package defective_test

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"coleader/internal/defective"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// haltApp is the minimal application: the root halts the layer as soon as
// its first turn after setup comes around.
type haltApp struct{ started bool }

func (h *haltApp) Start(api defective.API) {
	h.started = true
	if api.Index() == 0 {
		api.Halt()
	}
}

func (h *haltApp) Deliver(defective.Dir, uint64, defective.API) {}

// buildLayer constructs a defective layer rooted at node 0 on an oriented
// ring of n nodes, one app per node from mk.
func buildLayer(t *testing.T, n int, mk func(k int) defective.App) (ring.Topology, []node.PulseMachine) {
	t.Helper()
	topo, err := ring.Oriented(n)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]node.PulseMachine, n)
	for k := 0; k < n; k++ {
		m, err := defective.NewNode(k == 0, topo.CWPort(k), mk(k))
		if err != nil {
			t.Fatal(err)
		}
		ms[k] = m
	}
	return topo, ms
}

// TestLayerIdentity: census + broadcast give every node the correct n and
// index, with the exact predicted pulse cost.
func TestLayerIdentity(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 12} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			apps := make([]*haltApp, n)
			topo, ms := buildLayer(t, n, func(k int) defective.App {
				apps[k] = &haltApp{}
				return apps[k]
			})
			s, err := sim.New(topo, ms, sim.NewRandom(int64(n)))
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(1 << 22)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Quiescent || !res.AllTerminated {
				t.Fatalf("quiescent=%t terminated=%t", res.Quiescent, res.AllTerminated)
			}
			for k := 0; k < n; k++ {
				d := s.Machine(k).(*defective.Node)
				if d.N() != n || d.Index() != k {
					t.Errorf("node %d: learned (n=%d, index=%d)", k, d.N(), d.Index())
				}
				if !apps[k].started {
					t.Errorf("node %d: app never started", k)
				}
			}
			// Exact cost: setup (2n^2+4n) + n-1 pass frames (2n each) +
			// one HALT frame (3n).
			want := defective.PredictedSetupPulses(n) +
				uint64(n-1)*defective.FramePulses(n, 0) +
				defective.FramePulses(n, 1)
			if res.Sent != want {
				t.Errorf("pulses = %d, want exactly %d", res.Sent, want)
			}
			// The root (the HALT holder) terminates last.
			if last := res.TerminationOrder[n-1]; last != 0 {
				t.Errorf("last to terminate = %d, want root 0", last)
			}
		})
	}
}

// TestLayerIdentityAllSchedulers: identity derivation is schedule-
// independent.
func TestLayerIdentityAllSchedulers(t *testing.T) {
	const n = 5
	for name, sched := range sim.Stock(17) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			topo, ms := buildLayer(t, n, func(int) defective.App { return &haltApp{} })
			s, err := sim.New(topo, ms, sched)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Run(1 << 22); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < n; k++ {
				d := s.Machine(k).(*defective.Node)
				if d.N() != n || d.Index() != k {
					t.Errorf("node %d learned (n=%d, index=%d)", k, d.N(), d.Index())
				}
			}
		})
	}
}

// TestRingMaxOverDefective: max-consensus over the pulse-only transport
// yields the true maximum at every node.
func TestRingMaxOverDefective(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 12; trial++ {
		n := 1 + rng.Intn(8)
		inputs := make([]uint64, n)
		var max uint64
		for i := range inputs {
			inputs[i] = uint64(rng.Intn(50))
			if inputs[i] > max {
				max = inputs[i]
			}
		}
		apps := make([]*defective.RingMax, n)
		topo, ms := buildLayer(t, n, func(k int) defective.App {
			apps[k] = defective.NewRingMax(inputs[k])
			return apps[k]
		})
		s, err := sim.New(topo, ms, sim.NewRandom(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1 << 24)
		if err != nil {
			t.Fatalf("trial %d (inputs=%v): %v", trial, inputs, err)
		}
		if !res.Quiescent || !res.AllTerminated {
			t.Fatalf("trial %d: quiescent=%t terminated=%t", trial, res.Quiescent, res.AllTerminated)
		}
		for k, app := range apps {
			if !app.Done() || app.Result() != max {
				t.Errorf("trial %d node %d: done=%t result=%d, want %d (inputs=%v)",
					trial, k, app.Done(), app.Result(), max, inputs)
			}
		}
	}
}

// TestRingSumOverDefective: the counterclockwise-direction app computes the
// exact sum everywhere.
func TestRingSumOverDefective(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(6)
		inputs := make([]uint64, n)
		var sum uint64
		for i := range inputs {
			inputs[i] = uint64(rng.Intn(9))
			sum += inputs[i]
		}
		apps := make([]*defective.RingSum, n)
		topo, ms := buildLayer(t, n, func(k int) defective.App {
			apps[k] = defective.NewRingSum(inputs[k])
			return apps[k]
		})
		s, err := sim.New(topo, ms, sim.NewRandom(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(1 << 24); err != nil {
			t.Fatalf("trial %d (inputs=%v): %v", trial, inputs, err)
		}
		for k, app := range apps {
			if !app.Done() || app.Result() != sum {
				t.Errorf("trial %d node %d: result=%d, want %d (inputs=%v)",
					trial, k, app.Result(), sum, inputs)
			}
		}
	}
}

// TestRingCROverDefective: Chang–Roberts running over pulses elects the
// maximal application-level ID.
func TestRingCROverDefective(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5)
		ids := ring.PermutedIDs(n, rng)
		apps := make([]*defective.RingCR, n)
		topo, ms := buildLayer(t, n, func(k int) defective.App {
			apps[k] = defective.NewRingCR(ids[k])
			return apps[k]
		})
		s, err := sim.New(topo, ms, sim.NewRandom(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(1 << 24); err != nil {
			t.Fatalf("trial %d (ids=%v): %v", trial, ids, err)
		}
		wantIdx, _ := ring.MaxIndex(ids)
		for k, app := range apps {
			if k == wantIdx {
				if !app.Leader() {
					t.Errorf("trial %d: node %d (max id %d) not leader", trial, k, ids[k])
				}
				continue
			}
			if app.Leader() {
				t.Errorf("trial %d: node %d wrongly leader", trial, k)
			}
			if !app.Decided() || app.LeaderID() != ring.MaxID(ids) {
				t.Errorf("trial %d node %d: decided=%t leaderID=%d, want %d",
					trial, k, app.Decided(), app.LeaderID(), ring.MaxID(ids))
			}
		}
	}
}

// TestComposedCorollary5 is the headline end-to-end test: from nothing but
// unique IDs on an oriented fully defective ring, Algorithm 2 elects a
// leader, the composition switches every node into the defective layer
// rooted at that leader, and an arbitrary content-carrying algorithm
// (max-consensus over fresh inputs) runs to completion. All over pulses.
func TestComposedCorollary5(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(7)
		ids := ring.PermutedIDs(n, rng)
		inputs := make([]uint64, n)
		var max uint64
		for i := range inputs {
			inputs[i] = uint64(rng.Intn(40))
			if inputs[i] > max {
				max = inputs[i]
			}
		}
		topo, err := ring.Oriented(n)
		if err != nil {
			t.Fatal(err)
		}
		apps := make([]*defective.RingMax, n)
		ms := make([]node.PulseMachine, n)
		for k := 0; k < n; k++ {
			apps[k] = defective.NewRingMax(inputs[k])
			m, err := defective.NewComposed(ids[k], topo.CWPort(k), apps[k])
			if err != nil {
				t.Fatal(err)
			}
			ms[k] = m
		}
		s, err := sim.New(topo, ms, sim.NewRandom(int64(trial)))
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(1 << 24)
		if err != nil {
			t.Fatalf("trial %d (ids=%v): %v", trial, ids, err)
		}
		if !res.Quiescent || !res.AllTerminated {
			t.Fatalf("trial %d: quiescent=%t terminated=%t", trial, res.Quiescent, res.AllTerminated)
		}
		// The transport-level leader is the max-ID node.
		wantLeader, _ := ring.MaxIndex(ids)
		if res.Leader != wantLeader {
			t.Errorf("trial %d: leader %d, want %d", trial, res.Leader, wantLeader)
		}
		// The layer's indices are clockwise distances from the leader.
		for k := 0; k < n; k++ {
			c := s.Machine(k).(*defective.Composed)
			wantIdx := ((k-wantLeader)%n + n) % n
			if got := c.Layer().Index(); got != wantIdx {
				t.Errorf("trial %d node %d: layer index %d, want %d", trial, k, got, wantIdx)
			}
		}
		// And the simulated algorithm computed the right answer everywhere.
		for k, app := range apps {
			if !app.Done() || app.Result() != max {
				t.Errorf("trial %d node %d: result=%d done=%t, want %d",
					trial, k, app.Result(), app.Done(), max)
			}
		}
	}
}

// TestComposedAllSchedulers: the composition is schedule-independent.
func TestComposedAllSchedulers(t *testing.T) {
	ids := []uint64{3, 5, 1, 4}
	inputs := []uint64{9, 2, 14, 7}
	topo, err := ring.Oriented(4)
	if err != nil {
		t.Fatal(err)
	}
	for name, sched := range sim.Stock(29) {
		sched := sched
		t.Run(name, func(t *testing.T) {
			apps := make([]*defective.RingMax, 4)
			ms := make([]node.PulseMachine, 4)
			for k := range ms {
				apps[k] = defective.NewRingMax(inputs[k])
				m, err := defective.NewComposed(ids[k], topo.CWPort(k), apps[k])
				if err != nil {
					t.Fatal(err)
				}
				ms[k] = m
			}
			s, err := sim.New(topo, ms, sched)
			if err != nil {
				t.Fatal(err)
			}
			res, err := s.Run(1 << 24)
			if err != nil {
				t.Fatal(err)
			}
			if res.Leader != 1 {
				t.Errorf("leader %d, want 1", res.Leader)
			}
			for k, app := range apps {
				if app.Result() != 14 {
					t.Errorf("node %d result %d, want 14", k, app.Result())
				}
			}
		})
	}
}

// TestFrameCodec: EncodeFrame/DecodeFrame round-trip, and control values
// stay undecodable.
func TestFrameCodec(t *testing.T) {
	prop := func(payload uint64, toCCW bool) bool {
		payload %= 1 << 60
		to := defective.ToCW
		if toCCW {
			to = defective.ToCCW
		}
		v := defective.EncodeFrame(to, payload)
		gotTo, gotPayload, ok := defective.DecodeFrame(v)
		return ok && gotTo == to && gotPayload == payload && v >= 2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	for _, v := range []uint64{0, 1} {
		if _, _, ok := defective.DecodeFrame(v); ok {
			t.Errorf("control value %d decoded as message", v)
		}
	}
}

// TestNewNodeValidation covers constructor validation.
func TestNewNodeValidation(t *testing.T) {
	if _, err := defective.NewNode(true, pulse.Port1, nil); err == nil {
		t.Error("nil app accepted")
	}
	if _, err := defective.NewNode(true, pulse.Port(7), &haltApp{}); err == nil {
		t.Error("invalid port accepted")
	}
	if _, err := defective.NewComposed(0, pulse.Port1, &haltApp{}); err == nil {
		t.Error("zero ID accepted")
	}
	if _, err := defective.NewComposed(1, pulse.Port1, nil); err == nil {
		t.Error("nil app accepted by NewComposed")
	}
}

// TestDirString covers Dir naming.
func TestDirString(t *testing.T) {
	if defective.ToCW.String() != "cw" || defective.ToCCW.String() != "ccw" {
		t.Error("Dir.String broken")
	}
}
