package defective

// Demonstration applications for the defective layer: ordinary
// content-carrying asynchronous ring algorithms, written against the App
// interface with no knowledge that their messages will be transported as
// pulse counts. Together with Composed they realize Corollary 5 end to
// end.

// RingMax computes the maximum input over the ring: the root circulates an
// aggregation token clockwise that each node folds its input into; after a
// full loop the root learns the global maximum and circulates the result,
// again clockwise; when the result returns, the root halts the layer.
// Every node ends up knowing max over all inputs.
type RingMax struct {
	input  uint64
	result uint64
	phase  uint8 // 0 aggregate, 1 announce, 2 done
	done   bool
}

// NewRingMax returns a max-consensus app with the given local input.
func NewRingMax(input uint64) *RingMax { return &RingMax{input: input} }

// Result returns the computed maximum (valid once Done).
func (r *RingMax) Result() uint64 { return r.result }

// Done reports whether the node learned the final result.
func (r *RingMax) Done() bool { return r.done }

// Start implements App: only the root initiates.
func (r *RingMax) Start(api API) {
	if api.Index() != 0 {
		return
	}
	api.Send(ToCW, r.input)
}

// Deliver implements App.
func (r *RingMax) Deliver(from Dir, payload uint64, api API) {
	if from != ToCCW {
		// Both token and result travel clockwise, so they always arrive
		// from the counterclockwise neighbor; anything else is a transport
		// bug that tests should surface as a wrong result.
		return
	}
	root := api.Index() == 0
	switch r.phase {
	case 0:
		if root {
			// Aggregation token completed the loop: fold our input once
			// more is unnecessary (we seeded it); announce the result.
			r.result = payload
			r.done = true
			r.phase = 1
			api.Send(ToCW, payload)
			return
		}
		agg := payload
		if r.input > agg {
			agg = r.input
		}
		r.phase = 1
		api.Send(ToCW, agg)
	case 1:
		if root {
			// Result token returned: everyone knows; shut down.
			r.phase = 2
			api.Halt()
			return
		}
		r.result = payload
		r.done = true
		r.phase = 2
		api.Send(ToCW, payload)
	default:
		// Late traffic after completion would indicate a transport bug;
		// ignore so the output comparison catches it.
	}
}

// RingSum computes the sum of all inputs by the same two-loop scheme as
// RingMax, but counterclockwise, to exercise the other direction of the
// frame encoding.
type RingSum struct {
	input  uint64
	result uint64
	phase  uint8
	done   bool
}

// NewRingSum returns a sum app with the given local input.
func NewRingSum(input uint64) *RingSum { return &RingSum{input: input} }

// Result returns the computed sum (valid once Done).
func (s *RingSum) Result() uint64 { return s.result }

// Done reports whether the node learned the final result.
func (s *RingSum) Done() bool { return s.done }

// Start implements App.
func (s *RingSum) Start(api API) {
	if api.Index() != 0 {
		return
	}
	api.Send(ToCCW, s.input)
}

// Deliver implements App.
func (s *RingSum) Deliver(from Dir, payload uint64, api API) {
	if from != ToCW {
		return // counterclockwise traffic arrives from the clockwise side
	}
	root := api.Index() == 0
	switch s.phase {
	case 0:
		if root {
			s.result = payload
			s.done = true
			s.phase = 1
			api.Send(ToCCW, payload)
			return
		}
		s.phase = 1
		api.Send(ToCCW, payload+s.input)
	case 1:
		if root {
			s.phase = 2
			api.Halt()
			return
		}
		s.result = payload
		s.done = true
		s.phase = 2
		api.Send(ToCCW, payload)
	}
}

// RingCR runs Chang–Roberts over the defective layer — a deliberately
// self-referential stress test: a classical content-carrying election
// executing on a network that cannot carry content. Each node launches its
// (application-level) ID clockwise, forwards larger IDs, swallows smaller
// ones, and the owner of the returning maximum announces; the announcement
// also tells the root to halt the layer.
type RingCR struct {
	id       uint64
	leaderID uint64
	leader   bool
	decided  bool
}

// NewRingCR returns a Chang–Roberts app with the given application-level
// ID (independent of any transport-level identity).
func NewRingCR(id uint64) *RingCR { return &RingCR{id: id} }

// LeaderID returns the elected application-level leader ID (valid once
// Decided).
func (c *RingCR) LeaderID() uint64 { return c.leaderID }

// Leader reports whether this node won.
func (c *RingCR) Leader() bool { return c.leader }

// Decided reports whether the node has decided.
func (c *RingCR) Decided() bool { return c.decided }

// payload encoding: bit 0 = kind (0 probe, 1 announce), rest = ID.
func crProbe(id uint64) uint64    { return id << 1 }
func crAnnounce(id uint64) uint64 { return id<<1 | 1 }

// Start implements App.
func (c *RingCR) Start(api API) {
	api.Send(ToCW, crProbe(c.id))
}

// Deliver implements App.
func (c *RingCR) Deliver(from Dir, payload uint64, api API) {
	if from != ToCCW {
		return
	}
	id := payload >> 1
	if payload&1 == 1 { // announce
		if id == c.id {
			// Our announcement completed the loop: the ring has decided.
			// The layer's HALT may come from any node; the winner is the
			// natural choice.
			api.Halt()
			return
		}
		c.leaderID = id
		c.decided = true
		api.Send(ToCW, payload)
		return
	}
	switch {
	case id > c.id:
		api.Send(ToCW, payload)
	case id < c.id:
		// Swallow.
	default:
		c.leader = true
		c.leaderID = c.id
		c.decided = true
		api.Send(ToCW, crAnnounce(c.id))
	}
}
