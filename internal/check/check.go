// Package check exhaustively explores every asynchronous schedule of a
// pulse algorithm on a small ring: all interleavings of node wake-ups and
// pulse deliveries. Because content-oblivious executions are fully
// determined by the delivery order — and pulses within one channel are
// indistinguishable — the explored graph covers the entire behavior of the
// model of Section 2, turning claims like "Theorem 1 holds under every
// schedule" into machine-checked facts for small instances.
//
// The state space is pruned by memoizing canonical state encodings
// (node.Cloneable.StateKey plus per-channel queue depths), which keeps the
// exploration polynomial in ID_max for the paper's algorithms even though
// the raw schedule tree is exponential.
//
// Three engine-level optimizations make larger instances tractable:
//
//   - Undo-based DFS (the default): instead of deep-copying the machine
//     slice per branch, the explorer snapshots the one machine a step
//     mutates (node.Undoable) into a shared arena, applies the step in
//     place, and reverts on backtrack via an undo log of queue, init-bit,
//     and sent-counter deltas. Machines that do not implement Undoable
//     fall back to a per-step CloneMachine copy.
//   - A fingerprint memo table (MemoFingerprint): 64-bit hashes of the
//     binary state key in an open-addressing table replace the
//     map[string]struct{} of full keys, eliminating the per-state string
//     copy. MemoAudit certifies a run collision-free.
//   - Parallel exploration (Config.Workers > 1): a work-sharing pool over
//     subtree tasks with the visited set sharded behind per-shard locks.
//     Because every path to a state has the same length (each step is one
//     init or one delivery, both counted by the state itself), the report
//     counters are functions of the reachable-state closure and therefore
//     independent of exploration order; on any failure the engine reruns
//     sequentially so the verdict and witness are the canonical DFS-order
//     ones at every width.
package check

import (
	"errors"
	"fmt"

	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// Final summarizes a terminal (choice-free) state handed to the Check
// callback. The Statuses and Leaders slices are reused across terminal
// states by the exploring engine: a Check callback must not retain them
// past the call.
type Final struct {
	// Statuses holds each node's final status.
	Statuses []node.Status
	// Leaders lists the nodes in the Leader state.
	Leaders []int
	// Sent is the total number of pulses sent along this execution.
	Sent uint64
	// Quiescent reports whether no pulse remained queued. Terminal states
	// are quiescent unless the run stalled (which Exhaustive reports as an
	// error before calling Check).
	Quiescent bool
}

// Engine selects the state-restoration strategy of the explorer.
type Engine uint8

// Exploration engines.
const (
	// EngineUndo (the default) applies steps in place and reverts them
	// from an undo log when backtracking.
	EngineUndo Engine = iota

	// EngineClone deep-copies the full machine slice per branch: the
	// reference implementation, kept for differential testing and as the
	// benchmark baseline. Sequential only (Workers must be 1).
	EngineClone
)

// Config describes one exhaustive exploration.
type Config struct {
	// Topo is the (small) ring to explore.
	Topo ring.Topology

	// NewMachines returns fresh machines for the exploration's root state.
	// Every machine must implement node.Cloneable; machines that also
	// implement node.Undoable restore through compact snapshots instead of
	// per-branch deep copies.
	NewMachines func() ([]node.PulseMachine, error)

	// ExploreInits also branches over node wake-up interleavings. When
	// false, all nodes are initialized upfront in index order and only
	// delivery orders are explored.
	ExploreInits bool

	// MaxStates caps the number of distinct states visited; exceeding it
	// is an error. Zero means 1 << 22.
	MaxStates int

	// Check is invoked at every distinct terminal state; returning an
	// error aborts the exploration with a witness schedule attached. When
	// Workers > 1 the callback is invoked concurrently from multiple
	// exploration goroutines and must be safe for concurrent use.
	Check func(Final) error

	// Workers is the number of parallel exploration workers; values <= 1
	// select the sequential explorer. Report counts, terminal verdicts,
	// and the first witness are identical at any width.
	Workers int

	// Memo selects the visited-set representation; the zero value is
	// MemoFingerprint.
	Memo MemoMode

	// Engine selects the state-restoration strategy; the zero value is
	// EngineUndo.
	Engine Engine

	// plan is the normalized fault plan of an ExhaustiveFaults run; the
	// zero value (all Exhaustive runs) disables the fault plane entirely.
	plan fault.Plan
}

// Report summarizes a completed exploration.
type Report struct {
	// StatesVisited counts distinct (memoized) states.
	StatesVisited int
	// TerminalStates counts distinct terminal states checked.
	TerminalStates int
	// MaxDepth is the longest schedule explored (events from the root).
	MaxDepth int
}

// Exploration errors.
var (
	// ErrStateBudget: the exploration exceeded Config.MaxStates.
	ErrStateBudget = errors.New("check: state budget exceeded")

	// ErrStalled: some schedule reaches a non-quiescent state with no
	// deliverable pulse.
	ErrStalled = errors.New("check: stalled terminal state")

	// ErrViolation: a machine fault or quiescent-termination violation.
	ErrViolation = errors.New("check: protocol violation")

	// ErrFingerprintCollision: MemoAudit found two distinct states with
	// the same 64-bit fingerprint (a MemoFingerprint run would have
	// silently merged them).
	ErrFingerprintCollision = errors.New("check: state-key fingerprint collision")
)

// appendStateKey encodes st as a compact binary string into b: per-machine
// fixed-width binary keys (node.KeyAppender when implemented,
// length-prefixed StateKey text otherwise), fixed-width queue depths, and
// packed init bits.
func appendStateKey(b []byte, st *state) []byte {
	for _, m := range st.ms {
		if ka, ok := m.(node.KeyAppender); ok {
			b = ka.AppendStateKey(b)
		} else {
			k := m.StateKey()
			b = node.AppendKey32(b, uint32(len(k)))
			b = append(b, k...)
		}
	}
	for _, q := range st.queues {
		b = node.AppendKey32(b, q)
	}
	var w byte
	for i, in := range st.inited {
		if in {
			w |= 1 << (i & 7)
		}
		if i&7 == 7 {
			b = append(b, w)
			w = 0
		}
	}
	if len(st.inited)&7 != 0 {
		b = append(b, w)
	}
	if st.fx != nil {
		b = appendFaultKey(b, st.fx, st.sent)
	}
	return b
}

// Exhaustive explores every schedule and returns statistics, or the first
// error found together with its witness schedule.
func Exhaustive(cfg Config) (Report, error) {
	cfg.plan = fault.Plan{}
	rep, err := exhaustive(cfg)
	return rep.Report, err
}

// exhaustive validates the configuration and dispatches to an engine; both
// the faultless and the fault-aware entry points land here.
func exhaustive(cfg Config) (FaultReport, error) {
	if cfg.Topo.N() == 0 {
		return FaultReport{}, errors.New("check: empty topology")
	}
	if cfg.NewMachines == nil {
		return FaultReport{}, errors.New("check: nil NewMachines")
	}
	if cfg.MaxStates < 0 {
		return FaultReport{}, fmt.Errorf("check: negative MaxStates %d", cfg.MaxStates)
	}
	if cfg.MaxStates == 0 {
		// Fault plans can make the state space infinite (e.g. a duplicated
		// pulse under Algorithm 1 circulates forever), and exploration
		// recursion depth is bounded only by MaxStates on such instances —
		// the lower fault-mode default keeps a divergent run returning
		// ErrStateBudget instead of exhausting the stack.
		if cfg.plan.Active() {
			cfg.MaxStates = 1 << 20
		} else {
			cfg.MaxStates = 1 << 22
		}
	}
	if cfg.Engine > EngineClone {
		return FaultReport{}, fmt.Errorf("check: unknown engine %d", cfg.Engine)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > 1 {
		if cfg.Engine == EngineClone {
			return FaultReport{}, errors.New("check: the clone engine is sequential-only (set Workers to 1)")
		}
		return runParallel(cfg)
	}
	return runSequential(cfg)
}

// runSequential builds the root state and runs the selected single-core
// engine over it.
func runSequential(cfg Config) (FaultReport, error) {
	root, prefix, err := buildRoot(cfg)
	if err != nil {
		return FaultReport{}, err
	}
	memo, err := newMemo(cfg.Memo)
	if err != nil {
		return FaultReport{}, err
	}
	if cfg.Engine == EngineClone {
		ex := &cloneExplorer{cfg: cfg, memo: memo, steps: prefix}
		err := ex.dfs(root, 0)
		return ex.rep, err
	}
	ex := &undoExplorer{cfg: cfg, memo: memo, steps: prefix}
	ex.stepper = stepper{topo: cfg.Topo, n: cfg.Topo.N(), st: root}
	err = ex.dfs(0)
	return ex.rep, err
}

// buildRoot constructs and validates the root state. When ExploreInits is
// false it also applies the implicit upfront init prefix, returning the
// steps taken so every witness stays self-contained.
func buildRoot(cfg Config) (*state, []Step, error) {
	n := cfg.Topo.N()
	ms, err := cfg.NewMachines()
	if err != nil {
		return nil, nil, err
	}
	if len(ms) != n {
		return nil, nil, fmt.Errorf("check: %d machines for %d nodes", len(ms), n)
	}
	st := &state{
		ms:     make([]node.Cloneable[pulse.Pulse], n),
		queues: make([]uint32, 2*n),
		inited: make([]bool, n),
	}
	for k, m := range ms {
		c, ok := m.(node.Cloneable[pulse.Pulse])
		if !ok {
			return nil, nil, fmt.Errorf("check: machine %d does not implement node.Cloneable", k)
		}
		st.ms[k] = c
	}
	if cfg.plan.Active() {
		fx, err := newFaultX(cfg.plan, st.ms)
		if err != nil {
			return nil, nil, err
		}
		st.fx = fx
	}
	var steps []Step
	if !cfg.ExploreInits {
		for k := 0; k < n; k++ {
			steps = append(steps, Step{Init: k, Chan: -1})
			if err := st.initNode(cfg.Topo, k); err != nil {
				return nil, nil, wrapWitness(err, steps)
			}
		}
	}
	return st, steps, nil
}

// wrapWitness attaches a copy of the schedule so far to an error.
func wrapWitness(err error, steps []Step) error {
	if err == nil {
		return nil
	}
	return &WitnessError{Reason: err, Steps: append([]Step(nil), steps...)}
}

// state is one global configuration: machine states plus per-channel queue
// depths (pulses are indistinguishable, so depths suffice). fx is the
// fault plane of an ExhaustiveFaults run; nil otherwise.
type state struct {
	ms     []node.Cloneable[pulse.Pulse]
	queues []uint32 // channel id = 2*node + port
	inited []bool
	sent   uint64
	fx     *faultX
}

func (st *state) clone() *state {
	cp := &state{
		ms:     make([]node.Cloneable[pulse.Pulse], len(st.ms)),
		queues: append([]uint32(nil), st.queues...),
		inited: append([]bool(nil), st.inited...),
		sent:   st.sent,
		fx:     st.fx.clone(),
	}
	for i, m := range st.ms {
		cp.ms[i] = m.CloneMachine().(node.Cloneable[pulse.Pulse])
	}
	return cp
}

// collector implements node.Emitter against the state's queues. When log
// is set, every incremented channel id is recorded there so the undo
// engine can revert the sends of one handler invocation.
type collector struct {
	topo ring.Topology
	st   *state
	from int
	err  error
	log  *[]int32
}

func (c *collector) Send(p pulse.Port, _ pulse.Pulse) {
	to := c.topo.Peer(c.from, p)
	if st := c.st.ms[to.Node].Status(); st.Terminated {
		c.err = fmt.Errorf("%w: node %d sent toward terminated node %d", ErrViolation, c.from, to.Node)
		return
	}
	ch := 2*to.Node + int(to.Port)
	c.st.queues[ch]++
	c.st.sent++
	if fx := c.st.fx; fx != nil && fx.windowed {
		fx.sendCnt[ch]++
	}
	if c.log != nil {
		*c.log = append(*c.log, int32(ch))
	}
}

func (st *state) initNode(topo ring.Topology, k int) error {
	st.inited[k] = true
	if fx := st.fx; fx != nil && fx.windowed {
		fx.handlerCnt[k]++
	}
	col := &collector{topo: topo, st: st, from: k}
	st.ms[k].Init(col)
	if col.err != nil {
		return col.err
	}
	return st.afterHandler(k)
}

func (st *state) deliver(topo ring.Topology, c int) error {
	k, p := c/2, pulse.Port(c%2)
	st.queues[c]--
	if fx := st.fx; fx != nil && fx.windowed {
		fx.delivCnt[c]++
		fx.handlerCnt[k]++
	}
	col := &collector{topo: topo, st: st, from: k}
	st.ms[k].OnMsg(p, pulse.Pulse{}, col)
	if col.err != nil {
		return col.err
	}
	return st.afterHandler(k)
}

// apply executes one step through the allocating (non-undo) path: the
// clone engine's branches and the parallel explorer's spawned subtree
// roots, both of which own a private copy of the state.
func (st *state) apply(topo ring.Topology, s Step) error {
	if s.Fault != 0 {
		return st.applyFault(topo, s)
	}
	if s.Init >= 0 {
		return st.initNode(topo, s.Init)
	}
	return st.deliver(topo, s.Chan)
}

func (st *state) afterHandler(k int) error {
	s := st.ms[k].Status()
	if s.Err != nil {
		return fmt.Errorf("%w: node %d: %v", ErrViolation, k, s.Err)
	}
	if s.Terminated && st.queues[2*k]+st.queues[2*k+1] > 0 {
		return fmt.Errorf("%w: node %d terminated with queued pulses", ErrViolation, k)
	}
	return nil
}

// choices enumerates the schedulable events of st: inits in ascending
// node order, then deliveries in ascending channel order — the canonical
// schedule order that witnesses and "first error" are defined against.
// Crashed nodes consume nothing, so deliveries toward them are excluded
// (their pulses stay queued, undeliverable until a Restart revives them).
func (st *state) choices() (inits []int, delivers []int) {
	for k, in := range st.inited {
		if !in {
			inits = append(inits, k)
		}
	}
	for c, q := range st.queues {
		if q == 0 {
			continue
		}
		k := c / 2
		if !st.inited[k] {
			continue
		}
		if st.fx != nil && st.fx.crashed[k] {
			continue
		}
		s := st.ms[k].Status()
		if s.Terminated || !st.ms[k].Ready(pulse.Port(c%2)) {
			continue
		}
		delivers = append(delivers, c)
	}
	return inits, delivers
}

// cloneExplorer is the reference engine: the pre-undo implementation that
// deep-copies the machine slice per branch and allocates its choice lists
// and collectors per state. The undo engine is proven against it by the
// clone-vs-undo differential test; the Exhaustive benchmarks keep it as
// the comparison baseline.
type cloneExplorer struct {
	cfg    Config
	memo   memoTable
	rep    FaultReport
	steps  []Step // schedule from the root to the current state
	keyBuf []byte // reusable buffer for state-key encoding
}

func (ex *cloneExplorer) dfs(st *state, depth int) error {
	ex.keyBuf = appendStateKey(ex.keyBuf[:0], st)
	added, merr := ex.memo.insert(fingerprint(ex.keyBuf), ex.keyBuf)
	if merr != nil {
		return wrapWitness(merr, ex.steps)
	}
	if !added {
		return nil
	}
	if ex.rep.StatesVisited >= ex.cfg.MaxStates {
		return wrapWitness(fmt.Errorf("%w (%d)", ErrStateBudget, ex.cfg.MaxStates), ex.steps)
	}
	ex.rep.StatesVisited++
	if depth > ex.rep.MaxDepth {
		ex.rep.MaxDepth = depth
	}

	inits, delivers := st.choices()
	if len(inits) == 0 && len(delivers) == 0 {
		ex.rep.TerminalStates++
		out, verr := terminalOutcomeOf(st, ex.cfg.Check)
		if st.fx.faulted() {
			ex.rep.countTerminal(out)
		} else if verr != nil {
			return wrapWitness(verr, ex.steps)
		}
	}

	for _, k := range inits {
		if err := ex.branch(st, depth, Step{Init: k, Chan: -1}); err != nil {
			return err
		}
	}
	for _, c := range delivers {
		if err := ex.branch(st, depth, Step{Init: -1, Chan: c}); err != nil {
			return err
		}
	}
	if fx := st.fx; fx != nil && len(fx.log) < fx.plan.Budget {
		for _, v := range appendFaultChoices(st, nil) {
			ex.rep.InjectionEdges++
			if err := ex.branch(st, depth, decodeChoice(len(st.ms), v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// branch clones st, applies one step on the copy, and recurses. A step
// whose handler violates on an already-faulted path is a pruned outcome
// (ViolationEdges), not a failure.
func (ex *cloneExplorer) branch(st *state, depth int, step Step) error {
	next := st.clone()
	ex.steps = append(ex.steps, step)
	defer func() { ex.steps = ex.steps[:len(ex.steps)-1] }()
	if err := next.apply(ex.cfg.Topo, step); err != nil {
		if errors.Is(err, ErrViolation) && next.fx.faulted() {
			ex.rep.ViolationEdges++
			return nil
		}
		return wrapWitness(err, ex.steps)
	}
	return ex.dfs(next, depth+1)
}

// countTerminal records the classification of one faulted terminal state.
func (rep *FaultReport) countTerminal(out int) {
	switch out {
	case terminalClean:
		rep.CleanTerminals++
	case terminalDegraded:
		rep.DegradedTerminals++
	case terminalStalled:
		rep.StalledTerminals++
	}
}

// terminalOutcomeOf classifies a choice-free state, allocating its Final
// slices: the clone engine's counterpart of stepper.terminalOutcome.
func terminalOutcomeOf(st *state, check func(Final) error) (int, error) {
	var queued uint32
	for _, q := range st.queues {
		queued += q
	}
	if queued > 0 {
		return terminalStalled, fmt.Errorf("%w: %d pulses undeliverable", ErrStalled, queued)
	}
	if check == nil {
		return terminalClean, nil
	}
	f := Final{Sent: st.sent, Quiescent: true}
	for k, m := range st.ms {
		s := m.Status()
		f.Statuses = append(f.Statuses, s)
		if s.State == node.StateLeader {
			f.Leaders = append(f.Leaders, k)
		}
	}
	if err := check(f); err != nil {
		return terminalDegraded, fmt.Errorf("%w: %v", ErrViolation, err)
	}
	return terminalClean, nil
}
