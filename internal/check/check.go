// Package check exhaustively explores every asynchronous schedule of a
// pulse algorithm on a small ring: all interleavings of node wake-ups and
// pulse deliveries. Because content-oblivious executions are fully
// determined by the delivery order — and pulses within one channel are
// indistinguishable — the explored graph covers the entire behavior of the
// model of Section 2, turning claims like "Theorem 1 holds under every
// schedule" into machine-checked facts for small instances.
//
// The state space is pruned by memoizing canonical state encodings
// (node.Cloneable.StateKey plus per-channel queue depths), which keeps the
// exploration polynomial in ID_max for the paper's algorithms even though
// the raw schedule tree is exponential.
package check

import (
	"errors"
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// Final summarizes a terminal (choice-free) state handed to the Check
// callback.
type Final struct {
	// Statuses holds each node's final status.
	Statuses []node.Status
	// Leaders lists the nodes in the Leader state.
	Leaders []int
	// Sent is the total number of pulses sent along this execution.
	Sent uint64
	// Quiescent reports whether no pulse remained queued. Terminal states
	// are quiescent unless the run stalled (which Exhaustive reports as an
	// error before calling Check).
	Quiescent bool
}

// Config describes one exhaustive exploration.
type Config struct {
	// Topo is the (small) ring to explore.
	Topo ring.Topology

	// NewMachines returns fresh machines for the exploration's root state.
	// Every machine must implement node.Cloneable.
	NewMachines func() ([]node.PulseMachine, error)

	// ExploreInits also branches over node wake-up interleavings. When
	// false, all nodes are initialized upfront in index order and only
	// delivery orders are explored.
	ExploreInits bool

	// MaxStates caps the number of distinct states visited; exceeding it
	// is an error. Zero means 1 << 22.
	MaxStates int

	// Check is invoked at every distinct terminal state; returning an
	// error aborts the exploration with a witness schedule attached.
	Check func(Final) error
}

// Report summarizes a completed exploration.
type Report struct {
	// StatesVisited counts distinct (memoized) states.
	StatesVisited int
	// TerminalStates counts distinct terminal states checked.
	TerminalStates int
	// MaxDepth is the longest schedule explored (events from the root).
	MaxDepth int
}

// Exploration errors.
var (
	// ErrStateBudget: the exploration exceeded Config.MaxStates.
	ErrStateBudget = errors.New("check: state budget exceeded")

	// ErrStalled: some schedule reaches a non-quiescent state with no
	// deliverable pulse.
	ErrStalled = errors.New("check: stalled terminal state")

	// ErrViolation: a machine fault or quiescent-termination violation.
	ErrViolation = errors.New("check: protocol violation")
)

type explorer struct {
	cfg     Config
	n       int
	visited map[string]struct{}
	rep     Report
	steps   []Step // schedule from the root to the current state
	keyBuf  []byte // reusable buffer for state-key encoding
}

// key encodes st as a compact binary string into the reusable buffer:
// per-machine fixed-width binary keys (node.KeyAppender when implemented,
// length-prefixed StateKey text otherwise), fixed-width queue depths, and
// packed init bits. The buffer is only valid until the next call; the
// memo map copies it on insertion.
func (ex *explorer) key(st *state) []byte {
	b := ex.keyBuf[:0]
	for _, m := range st.ms {
		if ka, ok := m.(node.KeyAppender); ok {
			b = ka.AppendStateKey(b)
		} else {
			k := m.StateKey()
			b = node.AppendKey32(b, uint32(len(k)))
			b = append(b, k...)
		}
	}
	for _, q := range st.queues {
		b = node.AppendKey32(b, q)
	}
	var w byte
	for i, in := range st.inited {
		if in {
			w |= 1 << (i & 7)
		}
		if i&7 == 7 {
			b = append(b, w)
			w = 0
		}
	}
	if len(st.inited)&7 != 0 {
		b = append(b, w)
	}
	ex.keyBuf = b
	return b
}

// Exhaustive explores every schedule and returns statistics, or the first
// error found together with its witness schedule.
func Exhaustive(cfg Config) (Report, error) {
	if cfg.Topo.N() == 0 {
		return Report{}, errors.New("check: empty topology")
	}
	if cfg.NewMachines == nil {
		return Report{}, errors.New("check: nil NewMachines")
	}
	if cfg.MaxStates == 0 {
		cfg.MaxStates = 1 << 22
	}
	ex := &explorer{cfg: cfg, n: cfg.Topo.N(), visited: make(map[string]struct{})}

	ms, err := cfg.NewMachines()
	if err != nil {
		return Report{}, err
	}
	if len(ms) != ex.n {
		return Report{}, fmt.Errorf("check: %d machines for %d nodes", len(ms), ex.n)
	}
	st := &state{
		ms:     make([]node.Cloneable[pulse.Pulse], ex.n),
		queues: make([]uint32, 2*ex.n),
		inited: make([]bool, ex.n),
	}
	for k, m := range ms {
		c, ok := m.(node.Cloneable[pulse.Pulse])
		if !ok {
			return Report{}, fmt.Errorf("check: machine %d does not implement node.Cloneable", k)
		}
		st.ms[k] = c
	}
	if !cfg.ExploreInits {
		// Record the implicit init prefix so witnesses are self-contained.
		for k := 0; k < ex.n; k++ {
			ex.steps = append(ex.steps, Step{Init: k, Chan: -1})
			if err := st.initNode(ex.cfg.Topo, k); err != nil {
				return ex.rep, ex.wrap(err)
			}
		}
	}
	err = ex.dfs(st, 0)
	return ex.rep, err
}

// state is one global configuration: machine states plus per-channel queue
// depths (pulses are indistinguishable, so depths suffice).
type state struct {
	ms     []node.Cloneable[pulse.Pulse]
	queues []uint32 // channel id = 2*node + port
	inited []bool
	sent   uint64
}

func (st *state) clone() *state {
	cp := &state{
		ms:     make([]node.Cloneable[pulse.Pulse], len(st.ms)),
		queues: append([]uint32(nil), st.queues...),
		inited: append([]bool(nil), st.inited...),
		sent:   st.sent,
	}
	for i, m := range st.ms {
		cp.ms[i] = m.CloneMachine().(node.Cloneable[pulse.Pulse])
	}
	return cp
}

// collector implements node.Emitter against the state's queues.
type collector struct {
	topo ring.Topology
	st   *state
	from int
	err  error
}

func (c *collector) Send(p pulse.Port, _ pulse.Pulse) {
	to := c.topo.Peer(c.from, p)
	if st := c.st.ms[to.Node].Status(); st.Terminated {
		c.err = fmt.Errorf("%w: node %d sent toward terminated node %d", ErrViolation, c.from, to.Node)
		return
	}
	c.st.queues[2*to.Node+int(to.Port)]++
	c.st.sent++
}

func (st *state) initNode(topo ring.Topology, k int) error {
	st.inited[k] = true
	col := &collector{topo: topo, st: st, from: k}
	st.ms[k].Init(col)
	if col.err != nil {
		return col.err
	}
	return st.afterHandler(k)
}

func (st *state) deliver(topo ring.Topology, c int) error {
	k, p := c/2, pulse.Port(c%2)
	st.queues[c]--
	col := &collector{topo: topo, st: st, from: k}
	st.ms[k].OnMsg(p, pulse.Pulse{}, col)
	if col.err != nil {
		return col.err
	}
	return st.afterHandler(k)
}

func (st *state) afterHandler(k int) error {
	s := st.ms[k].Status()
	if s.Err != nil {
		return fmt.Errorf("%w: node %d: %v", ErrViolation, k, s.Err)
	}
	if s.Terminated && st.queues[2*k]+st.queues[2*k+1] > 0 {
		return fmt.Errorf("%w: node %d terminated with queued pulses", ErrViolation, k)
	}
	return nil
}

// choices enumerates the schedulable events of st.
func (st *state) choices() (inits []int, delivers []int) {
	for k, in := range st.inited {
		if !in {
			inits = append(inits, k)
		}
	}
	for c, q := range st.queues {
		if q == 0 {
			continue
		}
		k := c / 2
		if !st.inited[k] {
			continue
		}
		s := st.ms[k].Status()
		if s.Terminated || !st.ms[k].Ready(pulse.Port(c%2)) {
			continue
		}
		delivers = append(delivers, c)
	}
	return inits, delivers
}

func (ex *explorer) wrap(err error) error {
	if err == nil {
		return nil
	}
	return &WitnessError{Reason: err, Steps: append([]Step(nil), ex.steps...)}
}

func (ex *explorer) dfs(st *state, depth int) error {
	if depth > ex.rep.MaxDepth {
		ex.rep.MaxDepth = depth
	}
	key := ex.key(st)
	if _, seen := ex.visited[string(key)]; seen {
		return nil
	}
	if len(ex.visited) >= ex.cfg.MaxStates {
		return ex.wrap(fmt.Errorf("%w (%d)", ErrStateBudget, ex.cfg.MaxStates))
	}
	ex.visited[string(key)] = struct{}{}
	ex.rep.StatesVisited++

	inits, delivers := st.choices()
	if len(inits) == 0 && len(delivers) == 0 {
		ex.rep.TerminalStates++
		var queued uint32
		for _, q := range st.queues {
			queued += q
		}
		if queued > 0 {
			return ex.wrap(fmt.Errorf("%w: %d pulses undeliverable", ErrStalled, queued))
		}
		if ex.cfg.Check != nil {
			f := Final{Sent: st.sent, Quiescent: true}
			for k, m := range st.ms {
				s := m.Status()
				f.Statuses = append(f.Statuses, s)
				if s.State == node.StateLeader {
					f.Leaders = append(f.Leaders, k)
				}
			}
			if err := ex.cfg.Check(f); err != nil {
				return ex.wrap(fmt.Errorf("%w: %v", ErrViolation, err))
			}
		}
		return nil
	}

	for _, k := range inits {
		next := st.clone()
		ex.steps = append(ex.steps, Step{Init: k, Chan: -1})
		err := next.initNode(ex.cfg.Topo, k)
		if err == nil {
			err = ex.dfs(next, depth+1)
		} else {
			err = ex.wrap(err)
		}
		ex.steps = ex.steps[:len(ex.steps)-1]
		if err != nil {
			return err
		}
	}
	for _, c := range delivers {
		next := st.clone()
		ex.steps = append(ex.steps, Step{Init: -1, Chan: c})
		err := next.deliver(ex.cfg.Topo, c)
		if err == nil {
			err = ex.dfs(next, depth+1)
		} else {
			err = ex.wrap(err)
		}
		ex.steps = ex.steps[:len(ex.steps)-1]
		if err != nil {
			return err
		}
	}
	return nil
}
