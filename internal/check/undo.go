package check

import (
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// stepper owns the apply/revert machinery over one mutable state. All
// scratch storage — the key buffer, the machine-snapshot arena, the
// send-undo log, and the choice arena — lives here and is reused with
// stack discipline, so stepping allocates nothing once the arenas have
// grown to the exploration's depth. Both the sequential undo engine and
// each parallel worker embed one.
type stepper struct {
	topo ring.Topology
	n    int
	st   *state

	keyBuf      []byte
	snapArena   []byte  // machine snapshots, stacked per applied step
	sendArena   []int32 // channel ids incremented, stacked per applied step
	choiceArena []int32 // schedulable events, stacked per visited state
	col         collector
	statuses    []node.Status
	leaders     []int
}

// undoFrame records what one apply changed, so revert can put it back.
type undoFrame struct {
	mach      int32
	deliverCh int32 // -1 for an init step
	snapOff   int32 // snapArena length before the step
	sendOff   int32 // sendArena length before the step
	// clone is the pre-step machine copy when the machine does not
	// implement node.Undoable (the fallback path); nil otherwise.
	clone node.Cloneable[pulse.Pulse]
}

// reset points the stepper at a new state and discards all stacked scratch
// (capacity is kept).
func (sp *stepper) reset(st *state) {
	sp.st = st
	sp.snapArena = sp.snapArena[:0]
	sp.sendArena = sp.sendArena[:0]
	sp.choiceArena = sp.choiceArena[:0]
}

// key encodes the current state into the reusable key buffer. The result
// is valid until the next call.
func (sp *stepper) key() []byte {
	sp.keyBuf = appendStateKey(sp.keyBuf[:0], sp.st)
	return sp.keyBuf
}

// apply executes one step in place, first snapshotting the one machine it
// runs (node.Undoable) or deep-copying it (fallback), and logging every
// channel the handler increments. The returned frame reverts the step.
// On error the state is left as the handler left it — fine, because every
// error aborts the exploration.
func (sp *stepper) apply(s Step) (undoFrame, error) {
	k := s.Init
	ch := int32(-1)
	if k < 0 {
		k = s.Chan / 2
		ch = int32(s.Chan)
	}
	fr := undoFrame{
		mach:      int32(k),
		deliverCh: ch,
		snapOff:   int32(len(sp.snapArena)),
		sendOff:   int32(len(sp.sendArena)),
	}
	m := sp.st.ms[k]
	if u, ok := m.(node.Undoable); ok {
		sp.snapArena = u.SnapshotTo(sp.snapArena)
	} else {
		fr.clone = m.CloneMachine().(node.Cloneable[pulse.Pulse])
	}
	sp.col = collector{topo: sp.topo, st: sp.st, from: k, log: &sp.sendArena}
	if ch < 0 {
		sp.st.inited[k] = true
		m.Init(&sp.col)
	} else {
		sp.st.queues[ch]--
		m.OnMsg(pulse.Port(int(ch)&1), pulse.Pulse{}, &sp.col)
	}
	if sp.col.err != nil {
		return fr, sp.col.err
	}
	return fr, sp.st.afterHandler(k)
}

// revert undoes a successful apply: queue increments come back off the
// send log, the consumed pulse (or init bit) is restored, and the machine
// rewinds from its snapshot (or swaps back to the pre-step clone).
func (sp *stepper) revert(fr undoFrame) {
	for _, ch := range sp.sendArena[fr.sendOff:] {
		sp.st.queues[ch]--
		sp.st.sent--
	}
	sp.sendArena = sp.sendArena[:fr.sendOff]
	k := int(fr.mach)
	if fr.deliverCh >= 0 {
		sp.st.queues[fr.deliverCh]++
	} else {
		sp.st.inited[k] = false
	}
	if fr.clone != nil {
		sp.st.ms[k] = fr.clone
	} else {
		sp.st.ms[k].(node.Undoable).Restore(sp.snapArena[fr.snapOff:])
		sp.snapArena = sp.snapArena[:fr.snapOff]
	}
}

// pushChoices appends the schedulable events of the current state to the
// choice arena — inits ascending, then deliveries in channel order, the
// same canonical order as state.choices — and returns their [base, end)
// range. Entries survive deeper recursion because descendants only append
// past end and truncate back; callers restore with popChoices(base).
func (sp *stepper) pushChoices() (base, end int) {
	base = len(sp.choiceArena)
	for k, in := range sp.st.inited {
		if !in {
			sp.choiceArena = append(sp.choiceArena, int32(k))
		}
	}
	for c, q := range sp.st.queues {
		if q == 0 {
			continue
		}
		k := c / 2
		if !sp.st.inited[k] {
			continue
		}
		s := sp.st.ms[k].Status()
		if s.Terminated || !sp.st.ms[k].Ready(pulse.Port(c%2)) {
			continue
		}
		sp.choiceArena = append(sp.choiceArena, int32(sp.n+c))
	}
	return base, len(sp.choiceArena)
}

// stepAt decodes choice-arena entry i (init k -> k, deliver c -> n+c).
func (sp *stepper) stepAt(i int) Step {
	v := int(sp.choiceArena[i])
	if v < sp.n {
		return Step{Init: v, Chan: -1}
	}
	return Step{Init: -1, Chan: v - sp.n}
}

func (sp *stepper) popChoices(base int) { sp.choiceArena = sp.choiceArena[:base] }

// terminalVerdict evaluates a choice-free state: ErrStalled if pulses
// remain queued, otherwise the Check callback's verdict on the final
// configuration. The Final slices are the stepper's reusable scratch.
func (sp *stepper) terminalVerdict(check func(Final) error) error {
	var queued uint32
	for _, q := range sp.st.queues {
		queued += q
	}
	if queued > 0 {
		return fmt.Errorf("%w: %d pulses undeliverable", ErrStalled, queued)
	}
	if check == nil {
		return nil
	}
	f := Final{Sent: sp.st.sent, Quiescent: true}
	sp.statuses = sp.statuses[:0]
	sp.leaders = sp.leaders[:0]
	for k, m := range sp.st.ms {
		s := m.Status()
		sp.statuses = append(sp.statuses, s)
		if s.State == node.StateLeader {
			sp.leaders = append(sp.leaders, k)
		}
	}
	f.Statuses = sp.statuses
	f.Leaders = sp.leaders
	if err := check(f); err != nil {
		return fmt.Errorf("%w: %v", ErrViolation, err)
	}
	return nil
}

// undoExplorer is the default sequential engine: depth-first over one
// mutable state, backtracking through the stepper's undo frames instead of
// cloning per branch.
type undoExplorer struct {
	stepper
	cfg   Config
	memo  memoTable
	rep   Report
	steps []Step // schedule from the root to the current state
}

func (ex *undoExplorer) dfs(depth int) error {
	key := ex.key()
	added, merr := ex.memo.insert(fingerprint(key), key)
	if merr != nil {
		return wrapWitness(merr, ex.steps)
	}
	if !added {
		return nil
	}
	if ex.rep.StatesVisited >= ex.cfg.MaxStates {
		return wrapWitness(fmt.Errorf("%w (%d)", ErrStateBudget, ex.cfg.MaxStates), ex.steps)
	}
	ex.rep.StatesVisited++
	if depth > ex.rep.MaxDepth {
		ex.rep.MaxDepth = depth
	}

	base, end := ex.pushChoices()
	if base == end {
		ex.rep.TerminalStates++
		if err := ex.terminalVerdict(ex.cfg.Check); err != nil {
			return wrapWitness(err, ex.steps)
		}
		return nil
	}
	for i := base; i < end; i++ {
		step := ex.stepAt(i)
		ex.steps = append(ex.steps, step)
		fr, err := ex.apply(step)
		if err == nil {
			err = ex.dfs(depth + 1)
		} else {
			err = wrapWitness(err, ex.steps)
		}
		ex.steps = ex.steps[:len(ex.steps)-1]
		if err != nil {
			return err
		}
		ex.revert(fr)
	}
	ex.popChoices(base)
	return nil
}
