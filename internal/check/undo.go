package check

import (
	"errors"
	"fmt"

	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// stepper owns the apply/revert machinery over one mutable state. All
// scratch storage — the key buffer, the machine-snapshot arena, the
// send-undo log, and the choice arena — lives here and is reused with
// stack discipline, so stepping allocates nothing once the arenas have
// grown to the exploration's depth. Both the sequential undo engine and
// each parallel worker embed one.
type stepper struct {
	topo ring.Topology
	n    int
	st   *state

	keyBuf       []byte
	snapArena    []byte  // machine snapshots, stacked per applied step
	sendArena    []int32 // channel ids incremented, stacked per applied step
	choiceArena  []int32 // schedulable events, stacked per visited state
	faultScratch []byte  // corrupt-mask staging buffer (fault mode)
	col          collector
	statuses     []node.Status
	leaders      []int
}

// undoFrame records what one apply changed, so revert can put it back.
type undoFrame struct {
	mach      int32
	deliverCh int32 // -1 for an init step
	snapOff   int32 // snapArena length before the step
	sendOff   int32 // sendArena length before the step
	// clone is the pre-step machine copy when the machine does not
	// implement node.Undoable (the fallback path); nil otherwise.
	clone node.Cloneable[pulse.Pulse]
	// fault marks the frame as a fault injection (mach/deliverCh then
	// name the target); wasCrashed preserves a Restart victim's flag.
	fault      faultClass
	wasCrashed bool
}

// reset points the stepper at a new state and discards all stacked scratch
// (capacity is kept).
func (sp *stepper) reset(st *state) {
	sp.st = st
	sp.snapArena = sp.snapArena[:0]
	sp.sendArena = sp.sendArena[:0]
	sp.choiceArena = sp.choiceArena[:0]
}

// key encodes the current state into the reusable key buffer. The result
// is valid until the next call.
func (sp *stepper) key() []byte {
	sp.keyBuf = appendStateKey(sp.keyBuf[:0], sp.st)
	return sp.keyBuf
}

// apply executes one step in place, first snapshotting the one machine it
// runs (node.Undoable) or deep-copying it (fallback), and logging every
// channel the handler increments. The returned frame reverts the step —
// including after a failed apply: the snapshot precedes the handler and
// every queue change is logged, and Undoable.Restore clears any error the
// handler left, so revert restores the pre-step state exactly (fault mode
// prunes violating edges instead of aborting).
func (sp *stepper) apply(s Step) (undoFrame, error) {
	if s.Fault != 0 {
		return sp.applyFault(s)
	}
	k := s.Init
	ch := int32(-1)
	if k < 0 {
		k = s.Chan / 2
		ch = int32(s.Chan)
	}
	fr := undoFrame{
		mach:      int32(k),
		deliverCh: ch,
		snapOff:   int32(len(sp.snapArena)),
		sendOff:   int32(len(sp.sendArena)),
	}
	m := sp.st.ms[k]
	if u, ok := m.(node.Undoable); ok {
		sp.snapArena = u.SnapshotTo(sp.snapArena)
	} else {
		fr.clone = m.CloneMachine().(node.Cloneable[pulse.Pulse])
	}
	if fx := sp.st.fx; fx != nil && fx.windowed {
		fx.handlerCnt[k]++
		if ch >= 0 {
			fx.delivCnt[ch]++
		}
	}
	sp.col = collector{topo: sp.topo, st: sp.st, from: k, log: &sp.sendArena}
	if ch < 0 {
		sp.st.inited[k] = true
		m.Init(&sp.col)
	} else {
		sp.st.queues[ch]--
		m.OnMsg(pulse.Port(int(ch)&1), pulse.Pulse{}, &sp.col)
	}
	if sp.col.err != nil {
		return fr, sp.col.err
	}
	return fr, sp.st.afterHandler(k)
}

// revert undoes an applied step: queue increments come back off the send
// log, the consumed pulse (or init bit) is restored, and the machine
// rewinds from its snapshot (or swaps back to the pre-step clone).
func (sp *stepper) revert(fr undoFrame) {
	if fr.fault != 0 {
		sp.revertFault(fr)
		return
	}
	fx := sp.st.fx
	for _, ch := range sp.sendArena[fr.sendOff:] {
		sp.st.queues[ch]--
		sp.st.sent--
		if fx != nil && fx.windowed {
			fx.sendCnt[ch]--
		}
	}
	sp.sendArena = sp.sendArena[:fr.sendOff]
	k := int(fr.mach)
	if fr.deliverCh >= 0 {
		sp.st.queues[fr.deliverCh]++
	} else {
		sp.st.inited[k] = false
	}
	if fx != nil && fx.windowed {
		fx.handlerCnt[k]--
		if fr.deliverCh >= 0 {
			fx.delivCnt[fr.deliverCh]--
		}
	}
	if fr.clone != nil {
		sp.st.ms[k] = fr.clone
	} else {
		sp.st.ms[k].(node.Undoable).Restore(sp.snapArena[fr.snapOff:])
		sp.snapArena = sp.snapArena[:fr.snapOff]
	}
}

// pushChoices appends the schedulable events of the current state to the
// choice arena — inits ascending, then deliveries in channel order, the
// same canonical order as state.choices — and returns their [base, end)
// range. Entries survive deeper recursion because descendants only append
// past end and truncate back; callers restore with popChoices(base).
func (sp *stepper) pushChoices() (base, end int) {
	base = len(sp.choiceArena)
	for k, in := range sp.st.inited {
		if !in {
			sp.choiceArena = append(sp.choiceArena, int32(k))
		}
	}
	for c, q := range sp.st.queues {
		if q == 0 {
			continue
		}
		k := c / 2
		if !sp.st.inited[k] {
			continue
		}
		if sp.st.fx != nil && sp.st.fx.crashed[k] {
			continue
		}
		s := sp.st.ms[k].Status()
		if s.Terminated || !sp.st.ms[k].Ready(pulse.Port(c%2)) {
			continue
		}
		sp.choiceArena = append(sp.choiceArena, int32(sp.n+c))
	}
	return base, len(sp.choiceArena)
}

// stepAt decodes choice-arena entry i (init k -> k, deliver c -> n+c,
// fault branches by their flagged encoding).
func (sp *stepper) stepAt(i int) Step {
	return decodeChoice(sp.n, sp.choiceArena[i])
}

func (sp *stepper) popChoices(base int) { sp.choiceArena = sp.choiceArena[:base] }

// Terminal outcomes of a choice-free state: quiescent with Check passing,
// quiescent with Check failing, or stalled with undeliverable pulses. On a
// clean (never-injected) path the latter two abort the exploration; on a
// faulted path they are counted outcomes.
const (
	terminalClean = iota
	terminalDegraded
	terminalStalled
)

// terminalOutcome classifies a choice-free state and returns the verdict
// error a clean path would abort with (nil for terminalClean). The Final
// slices are the stepper's reusable scratch.
func (sp *stepper) terminalOutcome(check func(Final) error) (int, error) {
	var queued uint32
	for _, q := range sp.st.queues {
		queued += q
	}
	if queued > 0 {
		return terminalStalled, fmt.Errorf("%w: %d pulses undeliverable", ErrStalled, queued)
	}
	if check == nil {
		return terminalClean, nil
	}
	f := Final{Sent: sp.st.sent, Quiescent: true}
	sp.statuses = sp.statuses[:0]
	sp.leaders = sp.leaders[:0]
	for k, m := range sp.st.ms {
		s := m.Status()
		sp.statuses = append(sp.statuses, s)
		if s.State == node.StateLeader {
			sp.leaders = append(sp.leaders, k)
		}
	}
	f.Statuses = sp.statuses
	f.Leaders = sp.leaders
	if err := check(f); err != nil {
		return terminalDegraded, fmt.Errorf("%w: %v", ErrViolation, err)
	}
	return terminalClean, nil
}

// undoExplorer is the default sequential engine: depth-first over one
// mutable state, backtracking through the stepper's undo frames instead of
// cloning per branch.
type undoExplorer struct {
	stepper
	cfg   Config
	memo  memoTable
	rep   FaultReport
	steps []Step // schedule from the root to the current state
}

func (ex *undoExplorer) dfs(depth int) error {
	key := ex.key()
	added, merr := ex.memo.insert(fingerprint(key), key)
	if merr != nil {
		return wrapWitness(merr, ex.steps)
	}
	if !added {
		return nil
	}
	if ex.rep.StatesVisited >= ex.cfg.MaxStates {
		return wrapWitness(fmt.Errorf("%w (%d)", ErrStateBudget, ex.cfg.MaxStates), ex.steps)
	}
	ex.rep.StatesVisited++
	if depth > ex.rep.MaxDepth {
		ex.rep.MaxDepth = depth
	}

	base, end := ex.pushChoices()
	if base == end {
		ex.rep.TerminalStates++
		out, verr := ex.terminalOutcome(ex.cfg.Check)
		if ex.st.fx.faulted() {
			ex.rep.countTerminal(out)
		} else if verr != nil {
			return wrapWitness(verr, ex.steps)
		}
	}
	// Fault branches extend the same choice window: terminal states keep
	// them too (a corrupt-at-quiescence injection is exactly the
	// self-stabilization probe).
	fend := end
	if fx := ex.st.fx; fx != nil && len(fx.log) < fx.plan.Budget {
		fend = ex.pushFaultChoices()
	}
	for i := base; i < fend; i++ {
		step := ex.stepAt(i)
		if step.Fault != 0 {
			ex.rep.InjectionEdges++
		}
		ex.steps = append(ex.steps, step)
		fr, err := ex.apply(step)
		if err == nil {
			err = ex.dfs(depth + 1)
		} else if errors.Is(err, ErrViolation) && ex.st.fx.faulted() {
			// An injection consequence: prune the edge, keep exploring.
			ex.rep.ViolationEdges++
			ex.steps = ex.steps[:len(ex.steps)-1]
			ex.revert(fr)
			continue
		} else {
			err = wrapWitness(err, ex.steps)
		}
		ex.steps = ex.steps[:len(ex.steps)-1]
		if err != nil {
			return err
		}
		ex.revert(fr)
	}
	ex.popChoices(base)
	return nil
}
