package check_test

import (
	"errors"
	"fmt"
	"testing"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// alg2Config builds an exhaustive exploration of Algorithm 2 over all
// schedules, asserting Theorem 1 at every terminal state.
func alg2Config(t *testing.T, ids []uint64, exploreInits bool) check.Config {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	wantLeader, _ := ring.MaxIndex(ids)
	wantSent := core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))
	return check.Config{
		Topo:         topo,
		ExploreInits: exploreInits,
		NewMachines:  func() ([]node.PulseMachine, error) { return core.Alg2Machines(topo, ids) },
		Check: func(f check.Final) error {
			if len(f.Leaders) != 1 || f.Leaders[0] != wantLeader {
				return fmt.Errorf("leaders %v, want [%d]", f.Leaders, wantLeader)
			}
			if f.Sent != wantSent {
				return fmt.Errorf("sent %d, want %d", f.Sent, wantSent)
			}
			for k, st := range f.Statuses {
				if !st.Terminated {
					return fmt.Errorf("node %d not terminated", k)
				}
			}
			return nil
		},
	}
}

// TestExhaustiveAlg2 verifies Theorem 1 under EVERY delivery schedule for a
// family of small rings.
func TestExhaustiveAlg2(t *testing.T) {
	cases := [][]uint64{
		{1},
		{2},
		{3},
		{1, 2},
		{2, 1},
		{1, 3},
		{3, 2},
		{1, 2, 3},
		{3, 1, 2},
		{2, 3, 1},
		{4, 1, 2},
	}
	for _, ids := range cases {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			rep, err := check.Exhaustive(alg2Config(t, ids, false))
			if err != nil {
				t.Fatal(err)
			}
			if rep.TerminalStates == 0 {
				t.Error("no terminal states reached")
			}
			t.Logf("ids=%v: %d states, %d terminal, depth %d",
				ids, rep.StatesVisited, rep.TerminalStates, rep.MaxDepth)
		})
	}
}

// TestExhaustiveAlg2WithInitInterleavings additionally branches over
// wake-up orders (late starters receive pulses before their own init can
// fire — a corner the model explicitly allows).
func TestExhaustiveAlg2WithInitInterleavings(t *testing.T) {
	for _, ids := range [][]uint64{{1, 2}, {2, 1}, {2, 3, 1}} {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			rep, err := check.Exhaustive(alg2Config(t, ids, true))
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("ids=%v: %d states, %d terminal", ids, rep.StatesVisited, rep.TerminalStates)
		})
	}
}

// TestExhaustiveAlg1 verifies the Algorithm 1 stabilization claims under
// every schedule: quiescent terminal states with exactly the max-ID nodes
// leading and exactly n·ID_max pulses — including duplicated maxima
// (Lemma 16).
func TestExhaustiveAlg1(t *testing.T) {
	cases := [][]uint64{
		{1, 2},
		{2, 2},
		{3, 1, 2},
		{2, 2, 1},
		{3, 3, 3},
		{1, 3, 3},
	}
	for _, ids := range cases {
		ids := ids
		t.Run(fmt.Sprintf("ids=%v", ids), func(t *testing.T) {
			topo, err := ring.Oriented(len(ids))
			if err != nil {
				t.Fatal(err)
			}
			idMax := ring.MaxID(ids)
			var wantLeaders []int
			for i, id := range ids {
				if id == idMax {
					wantLeaders = append(wantLeaders, i)
				}
			}
			cfg := check.Config{
				Topo:        topo,
				NewMachines: func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) },
				Check: func(f check.Final) error {
					if fmt.Sprint(f.Leaders) != fmt.Sprint(wantLeaders) {
						return fmt.Errorf("leaders %v, want %v", f.Leaders, wantLeaders)
					}
					if want := core.PredictedAlg1Pulses(len(ids), idMax); f.Sent != want {
						return fmt.Errorf("sent %d, want %d", f.Sent, want)
					}
					return nil
				},
			}
			rep, err := check.Exhaustive(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("ids=%v: %d states", ids, rep.StatesVisited)
		})
	}
}

// TestExhaustiveAlg3 verifies Theorem 2 under every schedule and every
// port assignment of a 2-node ring plus selected 3-node assignments.
func TestExhaustiveAlg3(t *testing.T) {
	type tc struct {
		ids    []uint64
		flips  []bool
		scheme core.IDScheme
	}
	var cases []tc
	for mask := 0; mask < 4; mask++ {
		flips := []bool{mask&1 != 0, mask&2 != 0}
		cases = append(cases,
			tc{[]uint64{1, 2}, flips, core.SchemeSuccessor},
			tc{[]uint64{2, 1}, flips, core.SchemeDoubled},
		)
	}
	cases = append(cases,
		tc{[]uint64{2, 3, 1}, []bool{true, false, true}, core.SchemeSuccessor},
		tc{[]uint64{1, 2, 3}, []bool{false, true, false}, core.SchemeDoubled},
	)
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("ids=%v flips=%v %v", c.ids, c.flips, c.scheme), func(t *testing.T) {
			topo, err := ring.NonOriented(c.flips)
			if err != nil {
				t.Fatal(err)
			}
			wantLeader, _ := ring.MaxIndex(c.ids)
			wantSent := core.PredictedAlg3Pulses(len(c.ids), ring.MaxID(c.ids), c.scheme)
			cfg := check.Config{
				Topo: topo,
				NewMachines: func() ([]node.PulseMachine, error) {
					return core.Alg3Machines(len(c.ids), c.ids, c.scheme)
				},
				Check: func(f check.Final) error {
					if len(f.Leaders) != 1 || f.Leaders[0] != wantLeader {
						return fmt.Errorf("leaders %v, want [%d]", f.Leaders, wantLeader)
					}
					if f.Sent != wantSent {
						return fmt.Errorf("sent %d, want %d", f.Sent, wantSent)
					}
					// Orientation consistency across all nodes.
					var dir pulse.Direction
					for k, st := range f.Statuses {
						if !st.HasOrientation {
							return fmt.Errorf("node %d unoriented", k)
						}
						d := topo.DirectionOf(k, st.CWPort)
						if dir == 0 {
							dir = d
						} else if d != dir {
							return fmt.Errorf("inconsistent orientation at node %d", k)
						}
					}
					return nil
				},
			}
			rep, err := check.Exhaustive(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%d states, %d terminal", rep.StatesVisited, rep.TerminalStates)
		})
	}
}

// TestExhaustiveAlg3Resample explores the RANDOMIZED machine of
// Proposition 19 under every schedule — possible because its PRNG state
// clones with the machine. Every terminal state must be quiescent with the
// exact Theorem 2 pulse count, the unique-max node leading, and all final
// IDs distinct whenever every non-max node resampled at least once into
// the (deliberately huge) [1, ID_max-1] range.
func TestExhaustiveAlg3Resample(t *testing.T) {
	// Unlike the deterministic machines, the resampler's reachable state
	// space grows quickly: a resample happens on (almost) every pulse past
	// the trigger, so different interleavings advance the PRNGs by
	// different amounts and states stop converging. Keep the instance tiny.
	ids := []uint64{2, 6, 2} // colliding small IDs + a unique max
	topo, err := ring.Oriented(3)
	if err != nil {
		t.Fatal(err)
	}
	wantSent := core.PredictedAlg3Pulses(3, 6, core.SchemeSuccessor)
	cfg := check.Config{
		Topo:      topo,
		MaxStates: 1 << 23,
		NewMachines: func() ([]node.PulseMachine, error) {
			return core.Alg3ResampleMachines(3, ids, core.SchemeSuccessor, 12345)
		},
		Check: func(f check.Final) error {
			if f.Sent != wantSent {
				return fmt.Errorf("sent %d, want %d", f.Sent, wantSent)
			}
			if len(f.Leaders) != 1 || f.Leaders[0] != 1 {
				return fmt.Errorf("leaders %v", f.Leaders)
			}
			return nil
		},
	}
	rep, err := check.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("randomized machine: %d states, %d terminal", rep.StatesVisited, rep.TerminalStates)
	if rep.TerminalStates == 0 {
		t.Error("no terminal states")
	}
}

// TestExhaustiveFindsInjectedBug plants a deliberately broken machine (it
// terminates one pulse early) and checks that exploration reports a
// violation: the checker can actually fail.
func TestExhaustiveFindsInjectedBug(t *testing.T) {
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := check.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return []node.PulseMachine{&eagerQuitter{}, &eagerQuitter{}}, nil
		},
	}
	_, err = check.Exhaustive(cfg)
	if err == nil {
		t.Fatal("exploration of a broken protocol reported no error")
	}
	if !errors.Is(err, check.ErrViolation) && !errors.Is(err, check.ErrStalled) {
		t.Errorf("err = %v, want a violation or stall", err)
	}
}

// eagerQuitter sends one pulse and terminates upon the first arrival even
// though its peer may still have pulses addressed to it.
type eagerQuitter struct {
	terminated bool
	got        int
}

func (q *eagerQuitter) Init(e node.PulseEmitter) {
	e.Send(pulse.Port1, pulse.Pulse{})
	e.Send(pulse.Port1, pulse.Pulse{})
}

func (q *eagerQuitter) OnMsg(p pulse.Port, _ pulse.Pulse, e node.PulseEmitter) {
	q.got++
	q.terminated = true
}

func (q *eagerQuitter) Ready(pulse.Port) bool { return !q.terminated }

func (q *eagerQuitter) Status() node.Status {
	return node.Status{Terminated: q.terminated, State: node.StateLeader}
}

func (q *eagerQuitter) CloneMachine() node.PulseMachine {
	cp := *q
	return &cp
}

func (q *eagerQuitter) StateKey() string {
	return fmt.Sprintf("eq|%t|%d", q.terminated, q.got)
}

// TestExhaustiveValidation covers config validation paths.
func TestExhaustiveValidation(t *testing.T) {
	if _, err := check.Exhaustive(check.Config{}); err == nil {
		t.Error("empty config accepted")
	}
	topo, _ := ring.Oriented(1)
	if _, err := check.Exhaustive(check.Config{Topo: topo}); err == nil {
		t.Error("nil NewMachines accepted")
	}
	// Non-cloneable machines are rejected.
	cfg := check.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return []node.PulseMachine{plainMachine{}}, nil
		},
	}
	if _, err := check.Exhaustive(cfg); err == nil {
		t.Error("non-cloneable machine accepted")
	}
}

type plainMachine struct{}

func (plainMachine) Init(node.PulseEmitter)                           {}
func (plainMachine) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (plainMachine) Ready(pulse.Port) bool                            { return true }
func (plainMachine) Status() node.Status                              { return node.Status{} }

// TestStateBudget: a tiny budget trips ErrStateBudget.
func TestStateBudget(t *testing.T) {
	cfg := alg2Config(t, []uint64{1, 2, 3}, false)
	cfg.MaxStates = 3
	if _, err := check.Exhaustive(cfg); !errors.Is(err, check.ErrStateBudget) {
		t.Errorf("err = %v, want ErrStateBudget", err)
	}
}
