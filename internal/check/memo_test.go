package check

import (
	"errors"
	"fmt"
	"testing"
)

// TestFingerprintFixed pins the hash: it is unseeded by design, so
// explorations (and any audited collision) reproduce across runs and
// machines. These constants changing means every recorded fingerprint
// observation (e.g. an audited collision) silently invalidates — bump
// them only deliberately.
func TestFingerprintFixed(t *testing.T) {
	cases := map[string]uint64{
		"":                 0x9e3779b97f4a7c15,
		"a":                0x80151ee5a800655,
		"0123456789abcdef": 0xde427690e739a3c0,
	}
	for in, want := range cases {
		if got := fingerprint([]byte(in)); got != want {
			t.Errorf("fingerprint(%q) = %#x, want %#x", in, got, want)
		}
	}
	// Length separates keys that share a word prefix.
	if fingerprint([]byte("abcdefgh")) == fingerprint([]byte("abcdefgh\x00")) {
		t.Error("length not folded into the hash")
	}
}

// TestFpMemo exercises the open-addressing set: duplicates, the reserved
// zero value, and growth well past the initial table size.
func TestFpMemo(t *testing.T) {
	m := newFpMemo()
	if added, _ := m.insert(0, nil); !added {
		t.Error("first zero fingerprint not added")
	}
	if added, _ := m.insert(0, nil); added {
		t.Error("second zero fingerprint added")
	}
	// SplitMix-style scramble gives well-spread, reproducible values.
	scramble := func(i uint64) uint64 {
		z := i * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		return z ^ (z >> 27)
	}
	const n = 5000 // forces several grows from the 1024-slot start
	for i := uint64(1); i <= n; i++ {
		if added, err := m.insert(scramble(i), nil); err != nil || !added {
			t.Fatalf("insert %d: added=%t err=%v", i, added, err)
		}
	}
	for i := uint64(1); i <= n; i++ {
		if added, _ := m.insert(scramble(i), nil); added {
			t.Fatalf("duplicate %d re-added after grow", i)
		}
	}
	if m.used != n {
		t.Errorf("used = %d, want %d", m.used, n)
	}
}

// TestAuditMemo: the audit table accepts true duplicates silently and
// fails loudly when two DISTINCT keys share a fingerprint.
func TestAuditMemo(t *testing.T) {
	m := auditMemo{}
	if added, err := m.insert(5, []byte("a")); !added || err != nil {
		t.Fatalf("first insert: added=%t err=%v", added, err)
	}
	if added, err := m.insert(5, []byte("a")); added || err != nil {
		t.Fatalf("duplicate insert: added=%t err=%v", added, err)
	}
	_, err := m.insert(5, []byte("b"))
	if !errors.Is(err, ErrFingerprintCollision) {
		t.Fatalf("collision err = %v, want ErrFingerprintCollision", err)
	}
}

// TestShardedMemo: dedup holds across shard boundaries and modes.
func TestShardedMemo(t *testing.T) {
	for _, mode := range []MemoMode{MemoFingerprint, MemoFullKeys, MemoAudit} {
		s, err := newShardedMemo(mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			if added, err := s.insert(fingerprint(key), key); err != nil || !added {
				t.Fatalf("%v: insert %d: added=%t err=%v", mode, i, added, err)
			}
		}
		for i := 0; i < 1000; i++ {
			key := []byte(fmt.Sprintf("key-%d", i))
			if added, _ := s.insert(fingerprint(key), key); added {
				t.Fatalf("%v: duplicate %d re-added", mode, i)
			}
		}
	}
}

// TestMemoModeString covers the mode names used in flags and reports.
func TestMemoModeString(t *testing.T) {
	for mode, want := range map[MemoMode]string{
		MemoFingerprint: "fingerprint",
		MemoFullKeys:    "full-keys",
		MemoAudit:       "audit",
		MemoMode(99):    "memo?",
	} {
		if got := mode.String(); got != want {
			t.Errorf("MemoMode(%d).String() = %q, want %q", mode, got, want)
		}
	}
	if _, err := newMemo(MemoMode(99)); err == nil {
		t.Error("unknown memo mode accepted")
	}
}
