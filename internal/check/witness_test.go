package check_test

import (
	"strings"
	"testing"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
)

// unguardedConfig builds the guard-ablated Algorithm 2 exploration, which
// is known (TestAblation... in internal/core) to contain violating
// schedules.
func unguardedConfig(t *testing.T, ids []uint64) check.Config {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	return check.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			ms := make([]node.PulseMachine, len(ids))
			for k := range ms {
				m, err := core.NewAlg2Unguarded(ids[k], topo.CWPort(k))
				if err != nil {
					return nil, err
				}
				ms[k] = m
			}
			return ms, nil
		},
	}
}

// TestWitnessExtractAndReplay: the explorer's counterexample replays in
// the full simulator and reproduces the same violation, with observers
// (here a recorder) attached — the debugging loop the witness exists for.
func TestWitnessExtractAndReplay(t *testing.T) {
	cfg := unguardedConfig(t, []uint64{1, 3})
	_, err := check.Exhaustive(cfg)
	if err == nil {
		t.Fatal("expected a violation from the unguarded ablation")
	}
	steps, ok := check.Witness(err)
	if !ok {
		t.Fatalf("no witness attached to %v", err)
	}
	if len(steps) == 0 {
		t.Fatal("empty witness")
	}
	// The witness must start with the implicit init prefix.
	if steps[0].Init != 0 || steps[1].Init != 1 {
		t.Errorf("witness does not start with init prefix: %v", steps[:2])
	}

	rec := &trace.Recorder{}
	_, replayErr := check.Replay(cfg, steps, rec)
	if replayErr == nil {
		t.Fatal("replaying the violating schedule did not reproduce the violation")
	}
	if len(rec.Events) == 0 {
		t.Error("recorder captured nothing during replay")
	}
	t.Logf("violation reproduced after %d events: %v", len(rec.Events), replayErr)
}

// TestReplayBenignPrefix: replaying a witness minus its final step runs
// clean, pinning the violation to the last event.
func TestReplayBenignPrefix(t *testing.T) {
	cfg := unguardedConfig(t, []uint64{1, 3})
	_, err := check.Exhaustive(cfg)
	steps, ok := check.Witness(err)
	if !ok {
		t.Fatal("no witness")
	}
	if _, err := check.Replay(cfg, steps[:len(steps)-1]); err != nil {
		t.Fatalf("benign prefix failed: %v", err)
	}
}

// TestReplayFullCleanRun: replaying a hand-built complete schedule of the
// CORRECT algorithm reaches the usual verdict.
func TestReplayFullCleanRun(t *testing.T) {
	ids := []uint64{1, 2}
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	cfg := check.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return core.Alg2Machines(topo, ids)
		},
	}
	// Build a full schedule by running the simulator once under the
	// canonical scheduler and transcribing its deliveries.
	ms, err := cfg.NewMachines()
	if err != nil {
		t.Fatal(err)
	}
	var steps []check.Step
	for k := range ms {
		steps = append(steps, check.Step{Init: k, Chan: -1})
	}
	obs := sim.ObserverFunc[pulse.Pulse](func(e *sim.Event, _ *sim.Sim[pulse.Pulse]) error {
		if e.Kind == sim.EvDeliver {
			steps = append(steps, check.Step{Init: -1, Chan: 2*e.Node + int(e.Port)})
		}
		return nil
	})
	s, err := sim.New(topo, ms, sim.Canonical{}, sim.WithObserver[pulse.Pulse](obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(1 << 12); err != nil {
		t.Fatal(err)
	}

	res, err := check.Replay(cfg, steps)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leader != 1 || !res.Quiescent || !res.AllTerminated {
		t.Errorf("replay result: leader=%d quiescent=%t terminated=%t",
			res.Leader, res.Quiescent, res.AllTerminated)
	}
	if res.Sent != core.PredictedAlg2Pulses(2, 2) {
		t.Errorf("replay sent %d pulses", res.Sent)
	}
}

// TestStepString covers the step renderer.
func TestStepString(t *testing.T) {
	if got := (check.Step{Init: 2, Chan: -1}).String(); got != "init 2" {
		t.Errorf("Step.String = %q", got)
	}
	got := (check.Step{Init: -1, Chan: 5}).String()
	if !strings.Contains(got, "ch5") || !strings.Contains(got, "node 2") {
		t.Errorf("Step.String = %q", got)
	}
}

// TestWitnessOnPlainError: Witness on a non-witness error reports absence.
func TestWitnessOnPlainError(t *testing.T) {
	if _, ok := check.Witness(check.ErrStalled); ok {
		t.Error("plain error yielded a witness")
	}
}
