package check

import (
	"errors"
	"fmt"

	"coleader/internal/fault"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// Step is one scheduled event of a witness: a node wake-up (Init >= 0), a
// delivery from channel Chan (Init < 0), or — in fault-aware explorations
// — an injection (Fault != 0, targeting the channel Chan for Loss, Dup,
// and Spurious, the node Init otherwise; Mask is the Corrupt XOR mask).
type Step struct {
	Init  int         // node to initialize (or fault target), or -1
	Chan  int         // channel to deliver from (or fault target) when Init < 0
	Fault fault.Class // injected fault class, or 0 for a scheduler step
	Mask  byte        // corrupt mask when Fault is fault.Corrupt
}

// String renders the step.
func (s Step) String() string {
	switch {
	case s.Fault == fault.Corrupt:
		return fmt.Sprintf("inject corrupt node %d (mask %#02x)", s.Init, s.Mask)
	case s.Fault != 0 && s.Chan >= 0:
		return fmt.Sprintf("inject %v ch%d (node %d port %d)", s.Fault, s.Chan, s.Chan/2, s.Chan%2)
	case s.Fault != 0:
		return fmt.Sprintf("inject %v node %d", s.Fault, s.Init)
	case s.Init >= 0:
		return fmt.Sprintf("init %d", s.Init)
	}
	return fmt.Sprintf("deliver ch%d (node %d port %d)", s.Chan, s.Chan/2, s.Chan%2)
}

// WitnessError carries the exact schedule that led the exploration to a
// violation, so the failure can be replayed in the full simulator (with
// tracing, diagrams, invariant checkers) via Replay.
type WitnessError struct {
	// Reason is the underlying violation.
	Reason error
	// Steps is the schedule from the initial state to the violation. When
	// the exploration initialized all nodes upfront (ExploreInits false),
	// the implicit init steps are included explicitly, so Steps is always
	// self-contained.
	Steps []Step
}

// Error implements error.
func (w *WitnessError) Error() string {
	return fmt.Sprintf("%v\nwitness schedule (%d steps; replay with check.Replay)", w.Reason, len(w.Steps))
}

// Unwrap implements errors.Unwrap.
func (w *WitnessError) Unwrap() error { return w.Reason }

// Witness extracts the witness schedule from an exploration error, if one
// is attached.
func Witness(err error) ([]Step, bool) {
	var w *WitnessError
	if errors.As(err, &w) {
		return append([]Step(nil), w.Steps...), true
	}
	return nil, false
}

// Replay executes a witness schedule step by step on a fresh simulator
// built from the same configuration, with the given observers attached.
// It returns the simulator's result; errors during replay are expected
// when the witness leads to a violation (that is its purpose) and are
// returned for inspection rather than treated as replay failures.
func Replay(cfg Config, steps []Step, obs ...sim.Observer[pulse.Pulse]) (sim.Result, error) {
	ms, err := cfg.NewMachines()
	if err != nil {
		return sim.Result{}, err
	}
	opts := make([]sim.Option[pulse.Pulse], 0, len(obs))
	for _, o := range obs {
		opts = append(opts, sim.WithObserver[pulse.Pulse](o))
	}
	// The scheduler is irrelevant: Replay drives deliveries manually.
	s, err := sim.New(cfg.Topo, ms, sim.Canonical{}, opts...)
	if err != nil {
		return sim.Result{}, err
	}
	for i, st := range steps {
		var stepErr error
		switch {
		case st.Fault != 0:
			// The simulator's fault plane replays sampled schedules, not
			// arbitrary injections; faulted witnesses document, they do
			// not replay.
			stepErr = fmt.Errorf("fault step cannot be replayed")
		case st.Init >= 0:
			stepErr = s.InitNode(st.Init)
		default:
			stepErr = s.Deliver(st.Chan)
		}
		if stepErr != nil {
			return s.Result(), fmt.Errorf("check: replay step %d (%s): %w", i, st, stepErr)
		}
	}
	return s.Result(), nil
}

// initSteps returns the implicit upfront-init prefix for a topology.
func initSteps(t ring.Topology) []Step {
	steps := make([]Step, t.N())
	for k := range steps {
		steps[k] = Step{Init: k, Chan: -1}
	}
	return steps
}
