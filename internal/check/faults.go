package check

import (
	"fmt"

	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// Fault-aware exploration. ExhaustiveFaults branches not only over
// scheduler choices but over fault-injection points — every (class, target,
// position) a fault.Plan allows — so E14's sampled per-class outcomes
// become verified facts over all schedules AND all injection positions for
// small rings.
//
// Soundness of the memo under injection. A fault changes what a state IS:
// two configurations with identical machines and queues behave differently
// if one has a crashed node, and a terminal state's classification (clean /
// degraded) depends on whether the path to it was faulted. The state key
// therefore grows a fault section — the sent counter (no longer derivable
// from machine states once a Restart has rewound one), packed crashed bits,
// the window counters (saturated at Window+1: beyond the window every
// position is equally ineligible), and the injection log itself (class,
// target, mask per entry). Merging two states is then valid exactly when
// they agree on machines, queues, and the entire fault plane, so memo hits
// never conflate a faulted execution with a clean one.
//
// Depth determinism. Every path to a state still has the same length:
// depth = inits + deliveries + injections, where the init bits are in the
// key, injections = len(log) is in the key, and deliveries = sent − queued
// (each queued-or-delivered pulse was counted by sent, and each Loss
// removed an undelivered one from both). All three are functions of the
// key, so StatesVisited, TerminalStates, MaxDepth, and the outcome
// counters are functions of the reachable-state closure — identical at any
// Workers width, exactly as in the faultless explorer.
//
// Fault semantics mirror internal/sim's plane handling pulse for pulse:
// Loss removes a queued pulse and uncounts it from Sent (the simulator
// never counts a lost pulse); Dup and Spurious add one and count it; Crash
// freezes a node (its queued pulses become undeliverable, but its channels
// keep accepting — the live conduit pump outlives the node); Restart
// rewinds a node to its pre-Init snapshot and re-runs Init (allowed on
// crashed and terminated nodes, which models the live supervisor's
// amnesia-restart healing); Corrupt XORs a plan mask into the final byte
// of the node's snapshot (the fault.PerturbOutput convention).
//
// Violations after an injection are outcomes, not failures: a path that
// has at least one injection and then trips ErrViolation (a machine fault,
// a send toward a terminated node, termination with queued pulses) is
// counted in ViolationEdges and pruned. Only a violation on a clean path —
// the base protocol misbehaving — aborts with a witness, which is what the
// zero-budget differential pins: an inactive plan reproduces the faultless
// explorer's report byte for byte.

// FaultReport extends Report with the outcome census of a fault-aware
// exploration. The counters partition what the injected executions did;
// all of them are exact and Workers-independent.
type FaultReport struct {
	Report

	// InjectionEdges counts fault branches attempted (one per eligible
	// (class, target, mask) at each state expansion with budget left).
	InjectionEdges int

	// ViolationEdges counts pruned edges: steps on an already-faulted path
	// whose handler outcome was a protocol violation. These are expected
	// consequences of injection (e.g. a restarted node pulsing a neighbor
	// that already terminated), recorded and not explored further.
	ViolationEdges int

	// CleanTerminals counts quiescent terminal states of faulted paths
	// where the Check callback still passed: the fault healed completely.
	CleanTerminals int

	// DegradedTerminals counts quiescent terminal states of faulted paths
	// where Check failed: the ring quiesced but the guarantee (leader,
	// pulse count, termination) degraded.
	DegradedTerminals int

	// StalledTerminals counts terminal states of faulted paths with
	// undeliverable pulses left (e.g. stranded at a crashed node).
	StalledTerminals int
}

// ExhaustiveFaults explores every schedule of cfg interleaved with every
// fault injection plan allows, and returns the outcome census. A plan that
// normalizes to inactive (zero budget or no classes) degenerates to
// Exhaustive: same states, same report, same verdict.
//
// Restart and Corrupt require every machine to implement node.Undoable.
// When cfg.ExploreInits is false the upfront init prefix is applied before
// exploration starts, so injection positions inside that prefix are not
// branched over; set ExploreInits to cover init-time faults.
//
// On error the partially accumulated report is returned alongside it, so
// divergent instances (ErrStateBudget) still report how far they got.
func ExhaustiveFaults(cfg Config, plan fault.Plan) (FaultReport, error) {
	p, err := plan.Normalize()
	if err != nil {
		return FaultReport{}, err
	}
	if p.Budget > maxPlanBudget {
		return FaultReport{}, fmt.Errorf("check: plan budget %d exceeds %d", p.Budget, maxPlanBudget)
	}
	if cfg.MaxStates > maxFaultStates {
		return FaultReport{}, fmt.Errorf("check: fault-mode MaxStates %d exceeds %d (divergent fault spaces bound recursion depth by MaxStates)", cfg.MaxStates, maxFaultStates)
	}
	if 2*cfg.Topo.N() > faultTargetMask {
		return FaultReport{}, fmt.Errorf("check: fault exploration supports at most %d nodes", faultTargetMask/2)
	}
	cfg.plan = p
	return exhaustive(cfg)
}

// maxPlanBudget bounds the per-path injection count so the log length fits
// one key byte.
const maxPlanBudget = 255

// maxFaultStates caps fault-mode MaxStates. On a divergent instance (Dup
// or Spurious under Algorithm 1: n+1 pulses against n absorption slots,
// so one circulates forever) the DFS walks a single unbounded path, and
// recursion depth grows with StatesVisited — the cap keeps such runs
// returning ErrStateBudget instead of exhausting the goroutine stack.
const maxFaultStates = 1 << 21

// Choice-arena encoding of a fault branch: bit 24 flags the entry, bits
// 20-23 carry the class, 12-19 the corrupt mask, 0-11 the target (node for
// node classes, channel for channel classes).
const (
	faultChoiceFlag = 1 << 24
	faultClassShift = 20
	faultMaskShift  = 12
	faultTargetMask = 0xFFF
)

func encodeFaultChoice(cl fault.Class, mask byte, target int) int32 {
	return faultChoiceFlag | int32(cl)<<faultClassShift | int32(mask)<<faultMaskShift | int32(target)
}

// decodeChoice decodes one choice-arena entry: init k -> k, deliver c ->
// n+c, fault branches by the flagged encoding above.
func decodeChoice(n int, v int32) Step {
	if v&faultChoiceFlag == 0 {
		if int(v) < n {
			return Step{Init: int(v), Chan: -1}
		}
		return Step{Init: -1, Chan: int(v) - n}
	}
	cl := fault.Class(v >> faultClassShift & 0xF)
	mask := byte(v >> faultMaskShift & 0xFF)
	target := int(v & faultTargetMask)
	switch cl {
	case fault.Loss, fault.Dup, fault.Spurious:
		return Step{Init: -1, Chan: target, Fault: cl}
	default:
		return Step{Init: target, Chan: -1, Fault: cl, Mask: mask}
	}
}

// faultClass aliases fault.Class so undoFrame can hold one without the
// field name shadowing the package.
type faultClass = fault.Class

// faultRec is one injection on the current path, as folded into the key.
type faultRec struct {
	class  fault.Class
	target uint16
	mask   byte
}

// faultX is the fault plane of one exploration state: the plan (shared,
// read-only), the pre-Init snapshots Restart rewinds to (shared), and the
// per-path mutable plane — crashed flags, the injection log, and, when the
// plan is windowed, the exact per-entity event counters that decide
// injection eligibility. The counters are exact (not saturated) in the
// state so undo stays invertible; only the key saturates them.
type faultX struct {
	plan      fault.Plan
	initSnaps [][]byte
	windowed  bool

	crashed    []bool
	log        []faultRec
	handlerCnt []uint32 // per node; nil unless windowed
	sendCnt    []uint32 // per channel; nil unless windowed
	delivCnt   []uint32 // per channel; nil unless windowed
}

// newFaultX builds the root fault plane. plan must be normalized and
// active.
func newFaultX(plan fault.Plan, ms []node.Cloneable[pulse.Pulse]) (*faultX, error) {
	n := len(ms)
	fx := &faultX{
		plan:     plan,
		windowed: plan.Window > 0,
		crashed:  make([]bool, n),
	}
	if plan.Classes.Has(fault.Restart) || plan.Classes.Has(fault.Corrupt) {
		fx.initSnaps = make([][]byte, n)
		for k, m := range ms {
			u, ok := m.(node.Undoable)
			if !ok {
				return nil, fmt.Errorf("check: fault classes restart/corrupt require node.Undoable (machine %d is not)", k)
			}
			fx.initSnaps[k] = u.SnapshotTo(nil)
		}
	}
	if fx.windowed {
		fx.handlerCnt = make([]uint32, n)
		fx.sendCnt = make([]uint32, 2*n)
		fx.delivCnt = make([]uint32, 2*n)
	}
	return fx, nil
}

// clone deep-copies the mutable plane; plan and initSnaps are shared.
func (fx *faultX) clone() *faultX {
	if fx == nil {
		return nil
	}
	cp := &faultX{
		plan:      fx.plan,
		initSnaps: fx.initSnaps,
		windowed:  fx.windowed,
		crashed:   append([]bool(nil), fx.crashed...),
		log:       append([]faultRec(nil), fx.log...),
	}
	if fx.windowed {
		cp.handlerCnt = append([]uint32(nil), fx.handlerCnt...)
		cp.sendCnt = append([]uint32(nil), fx.sendCnt...)
		cp.delivCnt = append([]uint32(nil), fx.delivCnt...)
	}
	return cp
}

// faulted reports whether the current path has at least one injection.
func (fx *faultX) faulted() bool { return fx != nil && len(fx.log) > 0 }

// note appends the injection to the path log. It runs before the fault's
// effects so that error classification (which asks "was this path
// faulted?") already sees the entry.
func (fx *faultX) note(s Step) {
	t := s.Chan
	if t < 0 {
		t = s.Init
	}
	fx.log = append(fx.log, faultRec{class: s.Fault, target: uint16(t), mask: s.Mask})
}

// Window eligibility: a node fault needs the victim's handler count still
// inside the window, Loss/Dup the channel's send count, Spurious the
// channel's delivery count. An unwindowed plan admits every position.
func (fx *faultX) okNode(k int) bool {
	return !fx.windowed || uint64(fx.handlerCnt[k]) <= fx.plan.Window
}

func (fx *faultX) okSend(c int) bool {
	return !fx.windowed || uint64(fx.sendCnt[c]) <= fx.plan.Window
}

func (fx *faultX) okDeliv(c int) bool {
	return !fx.windowed || uint64(fx.delivCnt[c]) <= fx.plan.Window
}

// appendFaultKey folds the fault plane into the state key (see the memo
// soundness note atop this file). Counters saturate at Window+1 — two
// states whose counters are both past the window admit the same injections
// forever after, so merging them is sound.
func appendFaultKey(b []byte, fx *faultX, sent uint64) []byte {
	b = node.AppendKey64(b, sent)
	var w byte
	for i, c := range fx.crashed {
		if c {
			w |= 1 << (i & 7)
		}
		if i&7 == 7 {
			b = append(b, w)
			w = 0
		}
	}
	if len(fx.crashed)&7 != 0 {
		b = append(b, w)
	}
	if fx.windowed {
		sat := uint32(fx.plan.Window) + 1
		for _, cs := range [][]uint32{fx.handlerCnt, fx.sendCnt, fx.delivCnt} {
			for _, c := range cs {
				if c > sat {
					c = sat
				}
				b = append(b, byte(c), byte(c>>8))
			}
		}
	}
	b = append(b, byte(len(fx.log)))
	for _, r := range fx.log {
		b = append(b, byte(r.class), byte(r.target), byte(r.target>>8), r.mask)
	}
	return b
}

// faultClassOrder fixes the canonical branch order of fault classes.
var faultClassOrder = [...]fault.Class{
	fault.Loss, fault.Dup, fault.Spurious, fault.Crash, fault.Restart, fault.Corrupt,
}

// appendFaultChoices appends every injection eligible in st — classes in
// canonical order, targets ascending, corrupt masks in plan order — the
// fault counterpart of the canonical schedule order.
func appendFaultChoices(st *state, arena []int32) []int32 {
	fx := st.fx
	n := len(st.ms)
	for _, cl := range faultClassOrder {
		if !fx.plan.Classes.Has(cl) {
			continue
		}
		switch cl {
		case fault.Loss, fault.Dup:
			for c := 0; c < 2*n; c++ {
				if st.queues[c] > 0 && fx.okSend(c) {
					arena = append(arena, encodeFaultChoice(cl, 0, c))
				}
			}
		case fault.Spurious:
			for c := 0; c < 2*n; c++ {
				if !st.ms[c/2].Status().Terminated && fx.okDeliv(c) {
					arena = append(arena, encodeFaultChoice(cl, 0, c))
				}
			}
		case fault.Crash:
			for k := 0; k < n; k++ {
				if st.inited[k] && !fx.crashed[k] && !st.ms[k].Status().Terminated && fx.okNode(k) {
					arena = append(arena, encodeFaultChoice(cl, 0, k))
				}
			}
		case fault.Restart:
			// Crashed and terminated nodes stay eligible: restarting them
			// is resurrection/revival, the checker-side model of the live
			// supervisor's RestoreInit healing.
			for k := 0; k < n; k++ {
				if st.inited[k] && fx.okNode(k) {
					arena = append(arena, encodeFaultChoice(cl, 0, k))
				}
			}
		case fault.Corrupt:
			for k := 0; k < n; k++ {
				if st.inited[k] && !fx.crashed[k] && !st.ms[k].Status().Terminated && fx.okNode(k) {
					for _, m := range fx.plan.CorruptMasks {
						arena = append(arena, encodeFaultChoice(cl, m, k))
					}
				}
			}
		}
	}
	return arena
}

// applyFault executes a fault step through the allocating (non-undo) path:
// the clone engine's branches and the parallel explorer's spawned subtree
// roots. Mirrors stepper.applyFault.
func (st *state) applyFault(topo ring.Topology, s Step) error {
	fx := st.fx
	fx.note(s)
	switch s.Fault {
	case fault.Loss:
		st.queues[s.Chan]--
		st.sent--
		return nil
	case fault.Dup, fault.Spurious:
		st.queues[s.Chan]++
		st.sent++
		return nil
	case fault.Crash:
		fx.crashed[s.Init] = true
		return nil
	case fault.Restart:
		k := s.Init
		fx.crashed[k] = false
		st.ms[k].(node.Undoable).Restore(fx.initSnaps[k])
		if fx.windowed {
			fx.handlerCnt[k]++
		}
		col := &collector{topo: topo, st: st, from: k}
		st.ms[k].Init(col)
		if col.err != nil {
			return col.err
		}
		return st.afterHandler(k)
	case fault.Corrupt:
		k := s.Init
		u := st.ms[k].(node.Undoable)
		snap := u.SnapshotTo(nil)
		if len(snap) > 0 {
			snap[len(snap)-1] ^= s.Mask
			u.Restore(snap)
		}
		return st.afterHandler(k)
	}
	return fmt.Errorf("check: unknown fault class %v", s.Fault)
}

// applyFault executes a fault step in place with an undo frame, mirroring
// state.applyFault. Like stepper.apply, a failed application leaves the
// state fully logged and revertible: the machine snapshot precedes the
// handler, sends are on the send log, and the injection is on the path
// log, so revert restores the pre-step state exactly.
func (sp *stepper) applyFault(s Step) (undoFrame, error) {
	st := sp.st
	fx := st.fx
	fx.note(s)
	fr := undoFrame{
		mach:      -1,
		deliverCh: -1,
		snapOff:   int32(len(sp.snapArena)),
		sendOff:   int32(len(sp.sendArena)),
		fault:     s.Fault,
	}
	switch s.Fault {
	case fault.Loss:
		fr.deliverCh = int32(s.Chan)
		st.queues[s.Chan]--
		st.sent--
		return fr, nil
	case fault.Dup, fault.Spurious:
		fr.deliverCh = int32(s.Chan)
		st.queues[s.Chan]++
		st.sent++
		return fr, nil
	case fault.Crash:
		fr.mach = int32(s.Init)
		fx.crashed[s.Init] = true
		return fr, nil
	case fault.Restart:
		k := s.Init
		fr.mach = int32(k)
		fr.wasCrashed = fx.crashed[k]
		u := st.ms[k].(node.Undoable)
		sp.snapArena = u.SnapshotTo(sp.snapArena)
		fx.crashed[k] = false
		u.Restore(fx.initSnaps[k])
		if fx.windowed {
			fx.handlerCnt[k]++
		}
		sp.col = collector{topo: sp.topo, st: st, from: k, log: &sp.sendArena}
		st.ms[k].Init(&sp.col)
		if sp.col.err != nil {
			return fr, sp.col.err
		}
		return fr, st.afterHandler(k)
	case fault.Corrupt:
		k := s.Init
		fr.mach = int32(k)
		u := st.ms[k].(node.Undoable)
		sp.snapArena = u.SnapshotTo(sp.snapArena)
		if snap := sp.snapArena[fr.snapOff:]; len(snap) > 0 {
			sp.faultScratch = append(sp.faultScratch[:0], snap...)
			sp.faultScratch[len(sp.faultScratch)-1] ^= s.Mask
			u.Restore(sp.faultScratch)
		}
		return fr, st.afterHandler(k)
	}
	return fr, fmt.Errorf("check: unknown fault class %v", s.Fault)
}

// revertFault undoes one applied fault step (successful or failed).
func (sp *stepper) revertFault(fr undoFrame) {
	st := sp.st
	fx := st.fx
	fx.log = fx.log[:len(fx.log)-1]
	switch fr.fault {
	case fault.Loss:
		st.queues[fr.deliverCh]++
		st.sent++
	case fault.Dup, fault.Spurious:
		st.queues[fr.deliverCh]--
		st.sent--
	case fault.Crash:
		fx.crashed[fr.mach] = false
	case fault.Restart:
		for _, ch := range sp.sendArena[fr.sendOff:] {
			st.queues[ch]--
			st.sent--
			if fx.windowed {
				fx.sendCnt[ch]--
			}
		}
		sp.sendArena = sp.sendArena[:fr.sendOff]
		k := int(fr.mach)
		fx.crashed[k] = fr.wasCrashed
		if fx.windowed {
			fx.handlerCnt[k]--
		}
		st.ms[k].(node.Undoable).Restore(sp.snapArena[fr.snapOff:])
		sp.snapArena = sp.snapArena[:fr.snapOff]
	case fault.Corrupt:
		st.ms[int(fr.mach)].(node.Undoable).Restore(sp.snapArena[fr.snapOff:])
		sp.snapArena = sp.snapArena[:fr.snapOff]
	}
}

// pushFaultChoices appends the eligible injections of the current state to
// the choice arena (after the protocol choices) and returns the new end.
func (sp *stepper) pushFaultChoices() int {
	sp.choiceArena = appendFaultChoices(sp.st, sp.choiceArena)
	return len(sp.choiceArena)
}
