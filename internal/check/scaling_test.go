package check_test

import (
	"errors"
	"fmt"
	"testing"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
)

// diffCase is one exploration config the engine-equivalence tests run
// under every engine/memo/worker combination. Error cases included: the
// engines must agree on the failing schedule too.
type diffCase struct {
	name string
	cfg  check.Config
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	budget := alg2Config(t, []uint64{1, 2, 3}, false)
	budget.MaxStates = 5
	return []diffCase{
		{"alg2-312", alg2Config(t, []uint64{3, 1, 2}, false)},
		{"alg2-231-inits", alg2Config(t, []uint64{2, 3, 1}, true)},
		{"alg1-221", alg1Diff(t, []uint64{2, 2, 1})},
		{"alg3-21", alg3Diff(t, []uint64{2, 1})},
		{"unguarded-13", unguardedConfig(t, []uint64{1, 3})},
		{"unguarded-132", unguardedConfig(t, []uint64{1, 3, 2})},
		{"budget", budget},
	}
}

func alg1Diff(t *testing.T, ids []uint64) check.Config {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	return check.Config{
		Topo:        topo,
		NewMachines: func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) },
	}
}

func alg3Diff(t *testing.T, ids []uint64) check.Config {
	t.Helper()
	topo, err := ring.NonOriented([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	return check.Config{
		Topo: topo,
		NewMachines: func() ([]node.PulseMachine, error) {
			return core.Alg3Machines(len(ids), ids, core.SchemeDoubled)
		},
	}
}

// outcome flattens an exploration's result for equality comparison:
// report counters, error string, and the full witness schedule.
func outcome(rep check.Report, err error) string {
	s := fmt.Sprintf("rep=%+v", rep)
	if err != nil {
		s += " err=" + err.Error()
		if steps, ok := check.Witness(err); ok {
			s += fmt.Sprintf(" witness=%v", steps)
		}
	}
	return s
}

// TestUndoMatchesClone: the undo engine must be indistinguishable from the
// clone (reference) engine — same states, terminals, depth, verdict, and
// witness — on passing and failing explorations alike.
func TestUndoMatchesClone(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			ref := c.cfg
			ref.Engine = check.EngineClone
			ref.Memo = check.MemoFullKeys
			refRep, refErr := check.Exhaustive(ref)

			undo := c.cfg
			undo.Engine = check.EngineUndo
			undo.Memo = check.MemoFullKeys
			undoRep, undoErr := check.Exhaustive(undo)

			if got, want := outcome(undoRep, undoErr), outcome(refRep, refErr); got != want {
				t.Errorf("undo engine diverged from clone engine:\n undo:  %s\n clone: %s", got, want)
			}
		})
	}
}

// TestFingerprintMatchesFullKeys: the fingerprint memo must not change any
// exploration outcome (no collisions on these instances — certified by the
// audit mode pass).
func TestFingerprintMatchesFullKeys(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			exact := c.cfg
			exact.Memo = check.MemoFullKeys
			exactRep, exactErr := check.Exhaustive(exact)

			for _, memo := range []check.MemoMode{check.MemoFingerprint, check.MemoAudit} {
				fp := c.cfg
				fp.Memo = memo
				fpRep, fpErr := check.Exhaustive(fp)
				if got, want := outcome(fpRep, fpErr), outcome(exactRep, exactErr); got != want {
					t.Errorf("%v memo diverged from full keys:\n %v:   %s\n exact: %s", memo, memo, got, want)
				}
			}
		})
	}
}

// TestParallelMatchesSequential: at every worker width the parallel
// explorer must return the identical Report, and on failures the identical
// error and first witness (via the sequential-rerun contract).
func TestParallelMatchesSequential(t *testing.T) {
	for _, c := range diffCases(t) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			seq := c.cfg
			seq.Workers = 1
			seqRep, seqErr := check.Exhaustive(seq)
			want := outcome(seqRep, seqErr)

			for _, w := range []int{2, 4, 8} {
				par := c.cfg
				par.Workers = w
				parRep, parErr := check.Exhaustive(par)
				if got := outcome(parRep, parErr); got != want {
					t.Errorf("workers=%d diverged from sequential:\n par: %s\n seq: %s", w, got, want)
				}
			}
		})
	}
}

// TestParallelLargerInstance runs a bigger ring at several widths: the
// counters still agree exactly with the sequential run.
func TestParallelLargerInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := alg2Config(t, []uint64{5, 1, 4, 2}, false)
	seqRep, err := check.Exhaustive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		par := cfg
		par.Workers = w
		parRep, err := check.Exhaustive(par)
		if err != nil {
			t.Fatal(err)
		}
		if parRep != seqRep {
			t.Errorf("workers=%d report %+v, sequential %+v", w, parRep, seqRep)
		}
	}
	t.Logf("4-node alg2: %d states, depth %d", seqRep.StatesVisited, seqRep.MaxDepth)
}

// deafMachine sends one pulse at init but never accepts delivery: every
// schedule stalls with pulses queued toward a never-ready port. It is
// deliberately NOT node.Undoable, so the undo engine's clone-fallback
// path does the stepping.
type deafMachine struct{ sent bool }

func (d *deafMachine) Init(e node.PulseEmitter) {
	d.sent = true
	e.Send(pulse.Port1, pulse.Pulse{})
}
func (d *deafMachine) OnMsg(pulse.Port, pulse.Pulse, node.PulseEmitter) {}
func (d *deafMachine) Ready(pulse.Port) bool                            { return false }
func (d *deafMachine) Status() node.Status                              { return node.Status{} }
func (d *deafMachine) CloneMachine() node.PulseMachine {
	cp := *d
	return &cp
}
func (d *deafMachine) StateKey() string { return fmt.Sprintf("deaf|%t", d.sent) }

func deafConfig(t *testing.T) check.Config {
	t.Helper()
	topo, err := ring.Oriented(2)
	if err != nil {
		t.Fatal(err)
	}
	return check.Config{
		Topo:         topo,
		ExploreInits: true, // init steps run through the explorer, not the root builder
		NewMachines: func() ([]node.PulseMachine, error) {
			return []node.PulseMachine{&deafMachine{}, &deafMachine{}}, nil
		},
	}
}

// TestStalledWitnessReplay: a stall is reported as ErrStalled with a
// witness whose replay runs clean but ends non-quiescent — the stall is a
// property of the terminal state, not a machine fault.
func TestStalledWitnessReplay(t *testing.T) {
	cfg := deafConfig(t)
	_, err := check.Exhaustive(cfg)
	if !errors.Is(err, check.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	steps, ok := check.Witness(err)
	if !ok || len(steps) == 0 {
		t.Fatalf("no witness on %v", err)
	}
	res, replayErr := check.Replay(cfg, steps)
	if replayErr != nil {
		t.Fatalf("stall witness replay errored: %v", replayErr)
	}
	if res.Quiescent {
		t.Error("stalled schedule replayed to a quiescent state")
	}
}

// TestStateBudgetWitnessReplay: the budget error carries the schedule that
// reached the budget-tripping state, and that schedule replays clean.
func TestStateBudgetWitnessReplay(t *testing.T) {
	cfg := alg2Config(t, []uint64{1, 2, 3}, false)
	cfg.MaxStates = 3
	_, err := check.Exhaustive(cfg)
	if !errors.Is(err, check.ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget", err)
	}
	steps, ok := check.Witness(err)
	if !ok {
		t.Fatalf("no witness on %v", err)
	}
	if _, replayErr := check.Replay(cfg, steps); replayErr != nil {
		t.Fatalf("budget witness replay errored: %v", replayErr)
	}
}

// TestViolationWitnessReplay: the unguarded ablation's violation witness
// reproduces the violation under replay (round-trip for ErrViolation).
func TestViolationWitnessReplay(t *testing.T) {
	cfg := unguardedConfig(t, []uint64{1, 3})
	_, err := check.Exhaustive(cfg)
	if !errors.Is(err, check.ErrViolation) {
		t.Fatalf("err = %v, want ErrViolation", err)
	}
	steps, ok := check.Witness(err)
	if !ok {
		t.Fatal("no witness")
	}
	if _, replayErr := check.Replay(cfg, steps); replayErr == nil {
		t.Fatal("violation witness replayed clean")
	}
}

// TestScalingValidation covers the new config-validation paths.
func TestScalingValidation(t *testing.T) {
	cfg := alg2Config(t, []uint64{1, 2}, false)

	bad := cfg
	bad.MaxStates = -1
	if _, err := check.Exhaustive(bad); err == nil {
		t.Error("negative MaxStates accepted")
	}

	bad = cfg
	bad.Workers = 4
	bad.Engine = check.EngineClone
	if _, err := check.Exhaustive(bad); err == nil {
		t.Error("parallel clone engine accepted")
	}

	bad = cfg
	bad.Engine = check.Engine(99)
	if _, err := check.Exhaustive(bad); err == nil {
		t.Error("unknown engine accepted")
	}

	bad = cfg
	bad.Memo = check.MemoMode(99)
	if _, err := check.Exhaustive(bad); err == nil {
		t.Error("unknown memo mode accepted")
	}
	bad.Workers = 2
	if _, err := check.Exhaustive(bad); err == nil {
		t.Error("unknown memo mode accepted (parallel)")
	}
}

// TestUndoAllocations asserts the point of the overhaul: the undo engine
// explores in a near-constant number of allocations (root construction
// plus arena growth), at least 4x below the clone engine on the same
// instance.
func TestUndoAllocations(t *testing.T) {
	run := func(engine check.Engine) float64 {
		return testing.AllocsPerRun(10, func() {
			cfg := alg2Config(t, []uint64{3, 1, 2}, false)
			cfg.Engine = engine
			if _, err := check.Exhaustive(cfg); err != nil {
				t.Fatal(err)
			}
		})
	}
	undo := run(check.EngineUndo)
	clone := run(check.EngineClone)
	t.Logf("allocs/run: undo=%.0f clone=%.0f", undo, clone)
	if undo > 64 {
		t.Errorf("undo engine allocates %.0f times per exploration, want <= 64", undo)
	}
	if undo*4 > clone {
		t.Errorf("undo engine (%.0f allocs) is not 4x below clone engine (%.0f allocs)", undo, clone)
	}
}
