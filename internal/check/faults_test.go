package check_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"coleader/internal/check"
	"coleader/internal/core"
	"coleader/internal/fault"
	"coleader/internal/node"
	"coleader/internal/ring"
)

// alg1Config builds an exhaustive exploration of Algorithm 1, asserting
// Corollary 13 (max-ID leaders, n·ID_max pulses) at every terminal state.
func alg1Config(t *testing.T, ids []uint64) check.Config {
	t.Helper()
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		t.Fatal(err)
	}
	idMax := ring.MaxID(ids)
	var wantLeaders []int
	for i, id := range ids {
		if id == idMax {
			wantLeaders = append(wantLeaders, i)
		}
	}
	return check.Config{
		Topo:        topo,
		NewMachines: func() ([]node.PulseMachine, error) { return core.Alg1Machines(topo, ids) },
		Check: func(f check.Final) error {
			if fmt.Sprint(f.Leaders) != fmt.Sprint(wantLeaders) {
				return fmt.Errorf("leaders %v, want %v", f.Leaders, wantLeaders)
			}
			if want := core.PredictedAlg1Pulses(len(ids), idMax); f.Sent != want {
				return fmt.Errorf("sent %d, want %d", f.Sent, want)
			}
			return nil
		},
	}
}

// TestZeroBudgetPlanMatchesFaultless pins the differential the tentpole
// demands: an inactive fault plan reproduces the faultless checker's
// report exactly — same states, terminals, depth, verdict — across both
// engines and worker widths, with every fault counter zero.
func TestZeroBudgetPlanMatchesFaultless(t *testing.T) {
	plans := []fault.Plan{
		{},
		{Budget: 0, Classes: fault.AllClasses}, // budget gates classes
		{Budget: 3, Classes: 0},                // classes gate budget
		{Budget: 1, Classes: fault.NewSet(fault.Loss)}, // active — must differ
	}
	for _, mk := range []struct {
		name string
		cfg  func(t *testing.T) check.Config
	}{
		{"alg1", func(t *testing.T) check.Config { return alg1Config(t, []uint64{3, 1, 2}) }},
		{"alg2", func(t *testing.T) check.Config { return alg2Config(t, []uint64{2, 3, 1}, false) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			base, err := check.Exhaustive(mk.cfg(t))
			if err != nil {
				t.Fatal(err)
			}
			for i, plan := range plans {
				for _, workers := range []int{1, 4} {
					cfg := mk.cfg(t)
					cfg.Workers = workers
					rep, err := check.ExhaustiveFaults(cfg, plan)
					if err != nil {
						t.Fatalf("plan %d workers %d: %v", i, workers, err)
					}
					if plan.Active() {
						if rep.StatesVisited <= base.StatesVisited || rep.InjectionEdges == 0 {
							t.Errorf("active plan %d: %d states (base %d), %d injections — expected strictly more work",
								i, rep.StatesVisited, base.StatesVisited, rep.InjectionEdges)
						}
						continue
					}
					if rep.Report != base {
						t.Errorf("plan %d workers %d: report %+v, want faultless %+v", i, workers, rep.Report, base)
					}
					if rep.InjectionEdges+rep.ViolationEdges+rep.CleanTerminals+rep.DegradedTerminals+rep.StalledTerminals != 0 {
						t.Errorf("plan %d workers %d: nonzero fault counters %+v", i, workers, rep)
					}
				}
			}
		})
	}
}

// TestFaultReportsDeterministic asserts the tentpole's determinism
// contract: the full FaultReport is identical at every worker width and
// across the undo and clone engines, for every fault class. Classes that
// add pulses to the ring (Dup, Spurious, Restart) have divergent state
// spaces and abort on the state budget — even then every width returns
// the byte-identical canonical partial report, because the parallel
// engine discards its run and reruns the sequential canonical DFS on any
// failure.
func TestFaultReportsDeterministic(t *testing.T) {
	divergent := map[fault.Class]bool{fault.Dup: true, fault.Spurious: true, fault.Restart: true}
	classes := []fault.Class{fault.Loss, fault.Dup, fault.Spurious, fault.Crash, fault.Restart, fault.Corrupt}
	for _, cl := range classes {
		cl := cl
		t.Run(cl.String(), func(t *testing.T) {
			plan := fault.Plan{Classes: fault.NewSet(cl), Budget: 1}
			mkCfg := func() check.Config {
				cfg := alg2Config(t, []uint64{2, 3, 1}, false)
				cfg.MaxStates = 20000
				return cfg
			}

			ref, refErr := check.ExhaustiveFaults(mkCfg(), plan)
			if divergent[cl] {
				if !errors.Is(refErr, check.ErrStateBudget) {
					t.Fatalf("err = %v, want ErrStateBudget (pulse-adding classes diverge)", refErr)
				}
			} else if refErr != nil {
				t.Fatal(refErr)
			} else if ref.InjectionEdges == 0 {
				t.Fatalf("no injections explored for %v", cl)
			}
			for _, workers := range []int{2, 4, 7} {
				cfg := mkCfg()
				cfg.Workers = workers
				rep, err := check.ExhaustiveFaults(cfg, plan)
				if !errors.Is(err, refErr) && (err == nil) != (refErr == nil) {
					t.Fatalf("workers %d: err = %v, want %v", workers, err, refErr)
				}
				if rep != ref {
					t.Errorf("workers %d: report %+v, want %+v", workers, rep, ref)
				}
			}
			cfg := mkCfg()
			cfg.Engine = check.EngineClone
			rep, err := check.ExhaustiveFaults(cfg, plan)
			if (err == nil) != (refErr == nil) {
				t.Fatalf("clone engine: err = %v, want %v", err, refErr)
			}
			if rep != ref {
				t.Errorf("clone engine: report %+v, want %+v", rep, ref)
			}
			t.Logf("%v: %d states, inj %d, viol %d, clean %d, degraded %d, stalled %d (err=%v)",
				cl, ref.StatesVisited, ref.InjectionEdges, ref.ViolationEdges,
				ref.CleanTerminals, ref.DegradedTerminals, ref.StalledTerminals, refErr)
		})
	}
}

// TestAlg2CrashStrandsPulses: a fail-stop node under Algorithm 2 leaves
// its queued pulses undeliverable on some schedules — every crash is
// eventually visible as a stalled or degraded terminal, never as a clean
// one (the quiescently terminating algorithm cannot mask a fail-stop).
func TestAlg2CrashStrandsPulses(t *testing.T) {
	rep, err := check.ExhaustiveFaults(alg2Config(t, []uint64{2, 3, 1}, false),
		fault.Plan{Classes: fault.NewSet(fault.Crash), Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StalledTerminals == 0 {
		t.Error("no stalled terminals — a crash should strand pulses on some schedule")
	}
	if rep.CleanTerminals != 0 {
		t.Errorf("%d clean terminals — a crashed node can never look like a clean run", rep.CleanTerminals)
	}
}

// TestAlg1DupDiverges: duplicating one pulse under Algorithm 1 makes the
// state space infinite — conservation gives the ring n+1 pulses against n
// absorption slots, so one pulse circulates forever and the relay counters
// grow without bound. The exploration must hit the state budget rather
// than terminate.
func TestAlg1DupDiverges(t *testing.T) {
	cfg := alg1Config(t, []uint64{2, 1, 2})
	cfg.MaxStates = 30000
	_, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.NewSet(fault.Dup), Budget: 1})
	if !errors.Is(err, check.ErrStateBudget) {
		t.Fatalf("err = %v, want ErrStateBudget (divergent state space)", err)
	}
}

// TestAlg1LossQuiesces: losing a pulse under Algorithm 1 keeps the state
// space finite (fewer pulses than absorption slots), and the ring still
// quiesces on every schedule — but with a degraded outcome (fewer than
// n·ID_max pulses, possibly wrong leaders), never a stall.
func TestAlg1LossQuiesces(t *testing.T) {
	rep, err := check.ExhaustiveFaults(alg1Config(t, []uint64{2, 1, 2}),
		fault.Plan{Classes: fault.NewSet(fault.Loss), Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StalledTerminals != 0 {
		t.Errorf("%d stalled terminals — alg1 minus a pulse must still quiesce", rep.StalledTerminals)
	}
	if rep.DegradedTerminals == 0 {
		t.Error("no degraded terminals — losing a pulse must break the pulse-count guarantee somewhere")
	}
	t.Logf("loss: %d states, %d injections, %d degraded, %d clean",
		rep.StatesVisited, rep.InjectionEdges, rep.DegradedTerminals, rep.CleanTerminals)
}

// TestWindowBoundsPositions: a windowed plan admits strictly fewer
// injection positions than an unbounded one, and stays deterministic
// across widths.
func TestWindowBoundsPositions(t *testing.T) {
	mk := func() check.Config { return alg2Config(t, []uint64{2, 3, 1}, false) }
	open, err := check.ExhaustiveFaults(mk(), fault.Plan{Classes: fault.NewSet(fault.Loss), Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := check.ExhaustiveFaults(mk(), fault.Plan{Classes: fault.NewSet(fault.Loss), Budget: 1, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if narrow.InjectionEdges == 0 || narrow.InjectionEdges >= open.InjectionEdges {
		t.Errorf("window 1: %d injections, unbounded: %d — want 0 < narrow < open",
			narrow.InjectionEdges, open.InjectionEdges)
	}
	cfg := mk()
	cfg.Workers = 4
	par, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.NewSet(fault.Loss), Budget: 1, Window: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par != narrow {
		t.Errorf("windowed parallel report %+v, want %+v", par, narrow)
	}
}

// TestCrashThenRestartRevives: with budget for a crash AND a restart, the
// exploration contains paths where the crashed node is revived and the
// ring quiesces again — the checker-side model of the live supervisor's
// healing — alongside the crash-only stalls. The restarted node is
// amnesiac (it re-sends its init pulse and re-relays pulses it already
// counted), so the combined space is infinite and the run is certified up
// to the state budget: the partial census is still canonical (sequential
// DFS order is fixed), so the revived quiescent terminals it contains are
// stable facts about the bounded prefix.
func TestCrashThenRestartRevives(t *testing.T) {
	crashOnly, err := check.ExhaustiveFaults(alg1Config(t, []uint64{2, 1, 2}),
		fault.Plan{Classes: fault.NewSet(fault.Crash), Budget: 2})
	if err != nil {
		t.Fatal(err)
	}
	if crashOnly.StalledTerminals == 0 {
		t.Error("crash-only: no stalled terminals — a dead node should strand pulses on some schedule")
	}
	cfg := alg1Config(t, []uint64{2, 1, 2})
	cfg.MaxStates = 60000
	healed, err := check.ExhaustiveFaults(cfg,
		fault.Plan{Classes: fault.NewSet(fault.Crash, fault.Restart), Budget: 2})
	if !errors.Is(err, check.ErrStateBudget) {
		t.Fatalf("crash+restart: err = %v, want ErrStateBudget (amnesiac restart diverges)", err)
	}
	if healed.CleanTerminals+healed.DegradedTerminals == 0 {
		t.Error("crash+restart: no quiescent faulted terminals in the bounded prefix — no revival paths found")
	}
	t.Logf("crash-only: %+v", crashOnly)
	t.Logf("crash+restart (bounded): %+v", healed)
}

// TestCorruptOutputExplored: every single-bit output corruption at every
// position is branched by default (eight masks), and the exploration
// classifies each downstream execution rather than aborting.
func TestCorruptOutputExplored(t *testing.T) {
	rep, err := check.ExhaustiveFaults(alg1Config(t, []uint64{2, 1}),
		fault.Plan{Classes: fault.NewSet(fault.Corrupt), Budget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InjectionEdges%8 != 0 || rep.InjectionEdges == 0 {
		t.Errorf("injections %d, want a positive multiple of the 8 default masks", rep.InjectionEdges)
	}
	total := rep.CleanTerminals + rep.DegradedTerminals + rep.StalledTerminals
	if total == 0 {
		t.Error("no faulted terminals classified")
	}
	t.Logf("corrupt: %d injections, %d viol edges, %d clean / %d degraded / %d stalled",
		rep.InjectionEdges, rep.ViolationEdges, rep.CleanTerminals, rep.DegradedTerminals, rep.StalledTerminals)
}

// TestFaultPlanValidation covers plan normalization failures surfaced
// through ExhaustiveFaults.
func TestFaultPlanValidation(t *testing.T) {
	cfg := alg1Config(t, []uint64{2, 1})
	if _, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.AllClasses, Budget: -1}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.AllClasses, Budget: 1, Window: 1 << 20}); err == nil {
		t.Error("oversized window accepted")
	}
	if _, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.NewSet(fault.Corrupt), Budget: 1, CorruptMasks: []byte{0}}); err == nil {
		t.Error("zero corrupt mask accepted")
	}
	if _, err := check.ExhaustiveFaults(cfg, fault.Plan{Classes: fault.AllClasses, Budget: 1000}); err == nil {
		t.Error("oversized budget accepted")
	}
}

// TestFaultStepRendering pins the witness vocabulary of fault steps and
// that Replay refuses to replay them (the simulator's plane replays
// sampled schedules, not arbitrary injections).
func TestFaultStepRendering(t *testing.T) {
	steps := map[string]check.Step{
		"inject loss ch3 (node 1 port 1)":     {Init: -1, Chan: 3, Fault: fault.Loss},
		"inject spurious ch0 (node 0 port 0)": {Init: -1, Chan: 0, Fault: fault.Spurious},
		"inject crash node 2":                 {Init: 2, Chan: -1, Fault: fault.Crash},
		"inject corrupt node 1 (mask 0x04)":   {Init: 1, Chan: -1, Fault: fault.Corrupt, Mask: 4},
	}
	for want, s := range steps {
		if got := s.String(); got != want {
			t.Errorf("Step%+v.String() = %q, want %q", s, got, want)
		}
	}

	cfg := alg1Config(t, []uint64{2, 1})
	_, err := check.Replay(cfg, []check.Step{
		{Init: 0, Chan: -1}, {Init: 1, Chan: -1},
		{Init: -1, Chan: 1, Fault: fault.Loss},
	})
	if err == nil || !strings.Contains(err.Error(), "fault step") {
		t.Errorf("Replay of a fault step: err = %v, want fault-step refusal", err)
	}
}
