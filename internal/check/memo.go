package check

import (
	"fmt"
	"sync"

	"coleader/internal/node"
)

// MemoMode selects the visited-set representation of an exploration.
type MemoMode uint8

// Visited-set representations.
const (
	// MemoFingerprint (the default) stores 64-bit fingerprints of the
	// binary state keys in an open-addressing table. This cuts the
	// dominant memo-table allocation (one string copy per distinct state)
	// to nothing, at the theoretical cost of fingerprint collisions
	// silently merging two distinct states: with k distinct states the
	// collision probability is about k²/2⁶⁵, i.e. ~3·10⁻⁸ for a million
	// states. The hash is fixed (no per-process seed), so any collision
	// is at least deterministic and reproducible under MemoAudit.
	MemoFingerprint MemoMode = iota

	// MemoFullKeys stores the full binary keys: exact, allocation-heavy.
	MemoFullKeys

	// MemoAudit stores fingerprints AND full keys, and fails the
	// exploration loudly (ErrFingerprintCollision) if two distinct keys
	// ever share a fingerprint. Use it to certify a MemoFingerprint run.
	MemoAudit
)

// String names the mode.
func (m MemoMode) String() string {
	switch m {
	case MemoFingerprint:
		return "fingerprint"
	case MemoFullKeys:
		return "full-keys"
	case MemoAudit:
		return "audit"
	default:
		return "memo?"
	}
}

// fingerprint hashes the binary state key 8 bytes at a time: each 64-bit
// word is xored into the running hash and scrambled through the SplitMix64
// finalizer (a bijection, so no word-level information is discarded), with
// the key length folded into the initial value to separate prefixes.
// Word-at-a-time mixing is what keeps hashing off the exploration profile;
// byte-at-a-time FNV-1a measured ~40% of total exploration time.
//
// Deliberately unseeded: explorations must be reproducible run to run, so
// a colliding pair of states collides every time (and MemoAudit can prove
// it).
func fingerprint(b []byte) uint64 {
	h := 0x9e3779b97f4a7c15 ^ uint64(len(b))*0xff51afd7ed558ccd
	for len(b) >= 8 {
		h = mix64(h ^ node.Key64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var w uint64
		for i, c := range b {
			w |= uint64(c) << (8 * i)
		}
		h = mix64(h ^ w)
	}
	return h
}

// mix64 is the SplitMix64 finalizer.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// memoTable is the visited-state set. insert reports whether the state was
// new; it errors only in MemoAudit mode, on a fingerprint collision. The
// key slice is only valid during the call; implementations that retain it
// must copy.
type memoTable interface {
	insert(fp uint64, key []byte) (added bool, err error)
}

// newMemo builds the table for a mode.
func newMemo(mode MemoMode) (memoTable, error) {
	switch mode {
	case MemoFingerprint:
		return newFpMemo(), nil
	case MemoFullKeys:
		return keyMemo{}, nil
	case MemoAudit:
		return auditMemo{}, nil
	default:
		return nil, fmt.Errorf("check: unknown memo mode %d", mode)
	}
}

// fpMemo is an open-addressing (linear-probe) set of 64-bit fingerprints.
// Zero marks an empty slot; an actual zero fingerprint is tracked aside so
// no value needs remapping.
type fpMemo struct {
	slots   []uint64
	used    int
	hasZero bool
}

func newFpMemo() *fpMemo {
	return &fpMemo{slots: make([]uint64, 1024)}
}

func (t *fpMemo) insert(fp uint64, _ []byte) (bool, error) {
	if fp == 0 {
		if t.hasZero {
			return false, nil
		}
		t.hasZero = true
		return true, nil
	}
	mask := uint64(len(t.slots) - 1)
	i := fp & mask
	for t.slots[i] != 0 {
		if t.slots[i] == fp {
			return false, nil
		}
		i = (i + 1) & mask
	}
	t.slots[i] = fp
	t.used++
	if t.used*4 >= len(t.slots)*3 {
		t.grow()
	}
	return true, nil
}

func (t *fpMemo) grow() {
	old := t.slots
	t.slots = make([]uint64, 2*len(old))
	mask := uint64(len(t.slots) - 1)
	for _, fp := range old {
		if fp == 0 {
			continue
		}
		i := fp & mask
		for t.slots[i] != 0 {
			i = (i + 1) & mask
		}
		t.slots[i] = fp
	}
}

// keyMemo stores full binary keys: the exact (pre-fingerprint) behavior.
type keyMemo map[string]struct{}

func (m keyMemo) insert(_ uint64, key []byte) (bool, error) {
	if _, seen := m[string(key)]; seen {
		return false, nil
	}
	m[string(key)] = struct{}{}
	return true, nil
}

// auditMemo maps fingerprint -> full key and fails loudly when two
// distinct keys share a fingerprint.
type auditMemo map[uint64]string

func (m auditMemo) insert(fp uint64, key []byte) (bool, error) {
	if prev, seen := m[fp]; seen {
		if prev != string(key) {
			return false, fmt.Errorf("%w: fingerprint %#016x shared by keys %x and %x",
				ErrFingerprintCollision, fp, prev, key)
		}
		return false, nil
	}
	m[fp] = string(key)
	return true, nil
}

// memoShards spreads a memoTable across mutex-striped shards selected by
// the top fingerprint bits (the probe index uses the low bits, so shard
// selection and probing stay independent). It is the only memo form the
// parallel explorer uses; the sequential engines use the bare tables.
const memoShardBits = 6

type shardedMemo struct {
	shards [1 << memoShardBits]struct {
		mu sync.Mutex
		t  memoTable
	}
}

func newShardedMemo(mode MemoMode) (*shardedMemo, error) {
	s := &shardedMemo{}
	for i := range s.shards {
		t, err := newMemo(mode)
		if err != nil {
			return nil, err
		}
		s.shards[i].t = t
	}
	return s, nil
}

func (s *shardedMemo) insert(fp uint64, key []byte) (bool, error) {
	sh := &s.shards[fp>>(64-memoShardBits)]
	sh.mu.Lock()
	added, err := sh.t.insert(fp, key)
	sh.mu.Unlock()
	return added, err
}
