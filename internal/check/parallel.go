package check

import (
	"errors"
	"sync"
	"sync/atomic"
)

// The parallel explorer shares subtrees across workers: a worker running
// depth-first over its own mutable state (a stepper) peels off branches as
// cloned subtree-root tasks whenever the shared queue runs low, and
// otherwise recurses in place with undo. The visited set is the sharded
// memo table.
//
// Determinism contract. On success the Report is exact, not approximate:
// every path from the root to a state S has the same length (each step
// either sets one init bit or moves one pulse, and S fixes its init bits,
// queue depths, and sent counter), so StatesVisited, TerminalStates, and
// MaxDepth are functions of the reachable-state closure — which is the
// same set regardless of exploration order. On ANY failure (violation,
// stall, budget, audit collision) the counters and the failing schedule
// DO depend on order, so runParallel discards the partial run and reruns
// the sequential undo engine, which yields the canonical first witness
// and the same Report the sequential explorer would produce. Errors are
// the rare, terminal case; the common (passing) case keeps full speedup.

// parTask is a subtree root: a privately owned state plus its depth.
type parTask struct {
	st    *state
	depth int
}

type parExplorer struct {
	cfg  Config
	memo *shardedMemo

	states    atomic.Int64
	terminals atomic.Int64
	maxDepth  atomic.Int64
	failed    atomic.Bool

	// Fault-mode outcome counters; always zero in faultless runs. Like the
	// base counters they are exact: each state is expanded exactly once
	// (the memo folds the fault plane into the key), and every counter is
	// a function of the expanded state.
	injEdges  atomic.Int64
	violEdges atomic.Int64
	cleanT    atomic.Int64
	degradedT atomic.Int64
	stalledT  atomic.Int64

	mu          sync.Mutex
	cond        *sync.Cond
	queue       []parTask // LIFO: deep tasks first keeps the frontier small
	outstanding int       // queued + in-flight tasks
	done        bool
	queueLen    atomic.Int32 // mirror of len(queue) for the lock-free spawn check
}

// runParallel explores with cfg.Workers goroutines. See the determinism
// contract above for why it may fall back to runSequential.
func runParallel(cfg Config) (FaultReport, error) {
	root, _, err := buildRoot(cfg)
	if err != nil {
		return FaultReport{}, err
	}
	memo, err := newShardedMemo(cfg.Memo)
	if err != nil {
		return FaultReport{}, err
	}
	p := &parExplorer{cfg: cfg, memo: memo}
	p.cond = sync.NewCond(&p.mu)
	p.push(parTask{st: root, depth: 0})

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.work()
		}()
	}
	wg.Wait()

	if p.failed.Load() {
		return runSequential(cfg)
	}
	return FaultReport{
		Report: Report{
			StatesVisited:  int(p.states.Load()),
			TerminalStates: int(p.terminals.Load()),
			MaxDepth:       int(p.maxDepth.Load()),
		},
		InjectionEdges:    int(p.injEdges.Load()),
		ViolationEdges:    int(p.violEdges.Load()),
		CleanTerminals:    int(p.cleanT.Load()),
		DegradedTerminals: int(p.degradedT.Load()),
		StalledTerminals:  int(p.stalledT.Load()),
	}, nil
}

func (p *parExplorer) work() {
	sp := &stepper{topo: p.cfg.Topo, n: p.cfg.Topo.N()}
	for {
		t, ok := p.pop()
		if !ok {
			return
		}
		sp.reset(t.st)
		p.dfs(sp, t.depth)
		p.taskDone()
	}
}

// dfs is the worker-local exploration of one subtree. Bookkeeping mirrors
// undoExplorer.dfs with atomics; witnesses are not tracked (the sequential
// rerun reconstructs them).
func (p *parExplorer) dfs(sp *stepper, depth int) {
	if p.failed.Load() {
		return
	}
	key := sp.key()
	added, err := p.memo.insert(fingerprint(key), key)
	if err != nil {
		p.fail()
		return
	}
	if !added {
		return
	}
	if p.states.Add(1) > int64(p.cfg.MaxStates) {
		p.fail()
		return
	}
	for {
		d := p.maxDepth.Load()
		if int64(depth) <= d || p.maxDepth.CompareAndSwap(d, int64(depth)) {
			break
		}
	}

	base, end := sp.pushChoices()
	if base == end {
		p.terminals.Add(1)
		out, verr := sp.terminalOutcome(p.cfg.Check)
		if sp.st.fx.faulted() {
			switch out {
			case terminalClean:
				p.cleanT.Add(1)
			case terminalDegraded:
				p.degradedT.Add(1)
			case terminalStalled:
				p.stalledT.Add(1)
			}
		} else if verr != nil {
			p.fail()
			return
		}
	}
	fend := end
	if fx := sp.st.fx; fx != nil && len(fx.log) < fx.plan.Budget {
		fend = sp.pushFaultChoices()
	}
	for i := base; i < fend; i++ {
		step := sp.stepAt(i)
		if step.Fault != 0 {
			p.injEdges.Add(1)
		}
		if p.starving() {
			// Peel this branch off as a shareable task instead of
			// recursing: clone the state and apply the step on the copy.
			succ := sp.st.clone()
			if err := succ.apply(p.cfg.Topo, step); err != nil {
				if errors.Is(err, ErrViolation) && succ.fx.faulted() {
					p.violEdges.Add(1)
					continue
				}
				p.fail()
				return
			}
			p.push(parTask{st: succ, depth: depth + 1})
			continue
		}
		fr, err := sp.apply(step)
		if err != nil {
			if errors.Is(err, ErrViolation) && sp.st.fx.faulted() {
				p.violEdges.Add(1)
				sp.revert(fr)
				continue
			}
			p.fail()
			return
		}
		p.dfs(sp, depth+1)
		if p.failed.Load() {
			return // state and arenas are stale; the run is abandoned
		}
		sp.revert(fr)
	}
	sp.popChoices(base)
}

// starving reports whether the shared queue is low enough that branches
// should be shared rather than recursed in place.
func (p *parExplorer) starving() bool {
	return int(p.queueLen.Load()) < 2*p.cfg.Workers
}

func (p *parExplorer) push(t parTask) {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return
	}
	p.queue = append(p.queue, t)
	p.outstanding++
	p.queueLen.Store(int32(len(p.queue)))
	p.cond.Signal()
	p.mu.Unlock()
}

func (p *parExplorer) pop() (parTask, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.done {
			return parTask{}, false
		}
		if n := len(p.queue); n > 0 {
			t := p.queue[n-1]
			p.queue[n-1] = parTask{}
			p.queue = p.queue[:n-1]
			p.queueLen.Store(int32(n - 1))
			return t, true
		}
		p.cond.Wait()
	}
}

// taskDone retires one task; when none are queued or in flight the
// exploration is complete and all workers are released.
func (p *parExplorer) taskDone() {
	p.mu.Lock()
	p.outstanding--
	if p.outstanding == 0 {
		p.done = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// fail records a failure and releases all workers; the caller falls back
// to the sequential engine for the canonical verdict.
func (p *parExplorer) fail() {
	p.failed.Store(true)
	p.mu.Lock()
	p.done = true
	p.cond.Broadcast()
	p.mu.Unlock()
}
