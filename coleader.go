// Package coleader is the public API of this repository: a from-scratch Go
// implementation of "Content-Oblivious Leader Election on Rings" by Frei,
// Gelles, Ghazy, and Nolin (DISC 2024, brief announcement at PODC 2024).
//
// In the fully defective network model every message is corrupted down to
// a contentless pulse, and algorithms may rely only on the order and ports
// of pulse arrivals. This package elects leaders in that model:
//
//   - ElectOriented — Algorithm 2: quiescently terminating election on
//     oriented rings, exactly n(2·ID_max+1) pulses (Theorem 1).
//   - ElectOrientedStabilizing — Algorithm 1: the warm-up stabilizing
//     election, n·ID_max pulses, quiescent but non-terminating.
//   - ElectNonOriented — Algorithm 3: stabilizing election that also
//     orients a non-oriented ring (Theorem 2).
//   - ElectAnonymous — Algorithm 4 + Algorithm 3: randomized election on
//     anonymous rings, correct with high probability (Theorem 3).
//   - Compute — Corollary 5: elect a leader, then run an arbitrary
//     content-carrying ring algorithm over the fully defective network via
//     the universal simulation layer.
//   - SolitudePattern, LowerBound — the Section 6 lower-bound machinery.
//
// Executions run on a deterministic discrete-event simulator with a
// pluggable adversarial scheduler, or (WithLiveRuntime) on a goroutine-per-
// node runtime where the Go scheduler provides the asynchrony.
package coleader

import (
	"errors"
	"fmt"
	"math/rand"

	"coleader/internal/core"
	"coleader/internal/lowerbound"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
	"coleader/internal/trace"
)

// Port identifies one of a node's two ring ports.
type Port = pulse.Port

// The two ports. On an oriented ring Port1 leads clockwise.
const (
	Port0 = pulse.Port0
	Port1 = pulse.Port1
)

// State is a node's election output.
type State = node.State

// Election outputs.
const (
	Undecided = node.StateUndecided
	Leader    = node.StateLeader
	NonLeader = node.StateNonLeader
)

// NodeOutcome is one node's final condition.
type NodeOutcome struct {
	// ID is the node's identifier (for ElectAnonymous, the sampled one).
	ID uint64
	// State is the node's election output.
	State State
	// Terminated reports explicit termination (Algorithm 2 only).
	Terminated bool
	// HasOrientation and CWPort report the port labeling computed by
	// Algorithm 3.
	HasOrientation bool
	CWPort         Port
}

// Result summarizes one election run.
type Result struct {
	// N is the ring size.
	N int
	// Leader is the elected node's index, or -1 if the election failed to
	// produce a unique leader (possible only for ElectAnonymous).
	Leader int
	// LeaderID is the elected node's identifier.
	LeaderID uint64
	// Pulses counts every pulse sent; PulsesCW/PulsesCCW split it by ring
	// direction.
	Pulses, PulsesCW, PulsesCCW uint64
	// Quiescent reports that no pulse remained anywhere.
	Quiescent bool
	// Terminated reports that every node explicitly terminated.
	Terminated bool
	// Nodes holds per-node outcomes in ring order.
	Nodes []NodeOutcome
	// TerminationOrder lists nodes in termination order (Algorithm 2: the
	// leader is last).
	TerminationOrder []int
	// Predicted is the paper's exact complexity formula for this run; for
	// the deterministic algorithms Pulses == Predicted always.
	Predicted uint64
}

// ErrNoUniqueLeader is reported (inside Result.Leader == -1 cases the
// caller chooses to treat as errors) when an anonymous election's sampled
// maximum was not unique.
var ErrNoUniqueLeader = errors.New("coleader: no unique leader elected")

// ElectOriented runs Algorithm 2 on an oriented ring with the given
// distinct positive IDs (clockwise order): quiescently terminating, leader
// = maximum ID, exactly n(2·ID_max+1) pulses.
func ElectOriented(ids []uint64, opts ...Option) (Result, error) {
	cfg := buildConfig(len(ids), opts)
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		return Result{}, err
	}
	ms, err := core.Alg2Machines(topo, ids)
	if err != nil {
		return Result{}, err
	}
	predicted := core.PredictedAlg2Pulses(len(ids), ring.MaxID(ids))
	var obs []sim.Observer[pulse.Pulse]
	if cfg.invariants {
		obs = append(obs, trace.Alg2Invariants{IDMax: ring.MaxID(ids)})
	}
	return cfg.run(topo, ms, ids, predicted, obs)
}

// ElectOrientedStabilizing runs Algorithm 1: quiescently stabilizing,
// exactly n·ID_max pulses. Duplicate IDs are allowed (Lemma 16); every
// maximum-ID node ends in the Leader state.
func ElectOrientedStabilizing(ids []uint64, opts ...Option) (Result, error) {
	cfg := buildConfig(len(ids), opts)
	topo, err := ring.Oriented(len(ids))
	if err != nil {
		return Result{}, err
	}
	ms, err := core.Alg1Machines(topo, ids)
	if err != nil {
		return Result{}, err
	}
	predicted := core.PredictedAlg1Pulses(len(ids), ring.MaxID(ids))
	var obs []sim.Observer[pulse.Pulse]
	if cfg.invariants {
		obs = append(obs, trace.Alg1Invariants{IDMax: ring.MaxID(ids)})
	}
	return cfg.run(topo, ms, ids, predicted, obs)
}

// ElectNonOriented runs Algorithm 3 on a non-oriented ring: quiescently
// stabilizing election plus a consistent orientation, exactly
// n(2·ID_max+1) pulses with the default successor ID scheme (Theorem 2) or
// n(4·ID_max-1) with WithDoubledIDs (Proposition 15). Port assignments
// come from WithPortFlips/WithRandomPorts (default: oriented wiring, which
// the algorithm cannot observe anyway).
func ElectNonOriented(ids []uint64, opts ...Option) (Result, error) {
	cfg := buildConfig(len(ids), opts)
	topo, err := cfg.topology(len(ids))
	if err != nil {
		return Result{}, err
	}
	ms, err := core.Alg3Machines(len(ids), ids, cfg.scheme)
	if err != nil {
		return Result{}, err
	}
	predicted := core.PredictedAlg3Pulses(len(ids), ring.MaxID(ids), cfg.scheme)
	return cfg.run(topo, ms, ids, predicted, nil)
}

// ElectAnonymous runs the Theorem 3 pipeline on an anonymous ring of n
// nodes: every node samples an ID with Algorithm 4 (parameter c; larger
// means more reliable and more expensive) using the run's seed, then
// Algorithm 3 elects and orients. With probability 1 - O(n^-c) the sampled
// maximum is unique and a unique leader emerges; otherwise Result.Leader
// is -1 and the error wraps ErrNoUniqueLeader.
func ElectAnonymous(n int, c float64, opts ...Option) (Result, error) {
	ids := SampleAnonymousIDs(n, c, opts...)
	res, err := ElectNonOriented(ids, opts...)
	if err != nil {
		return res, err
	}
	if res.Leader < 0 {
		return res, fmt.Errorf("%w: sampled maximum not unique (n=%d, c=%v)", ErrNoUniqueLeader, n, c)
	}
	return res, nil
}

// SampleAnonymousIDs runs Algorithm 4 standalone: the IDs an anonymous
// ring of n nodes would sample for parameter c under the run's seed.
// Deterministic per seed, so callers can inspect the draw (e.g. to bound
// the cost n(2·ID_max+1) before running ElectNonOriented on it — the
// geometric sampler has a heavy tail and rare draws are enormous).
func SampleAnonymousIDs(n int, c float64, opts ...Option) []uint64 {
	cfg := buildConfig(n, opts)
	rng := rand.New(rand.NewSource(cfg.seed))
	return core.SampleIDs(rng, n, c)
}

// SolitudePattern extracts Algorithm 2's solitude pattern (Definition 21)
// for a single node with the given ID: '0' per clockwise arrival, '1' per
// counterclockwise. Lemma 22 guarantees patterns are unique per ID.
func SolitudePattern(id uint64) (string, error) {
	p, err := lowerbound.Solitude(func(id uint64) (node.PulseMachine, error) {
		return core.NewAlg2(id, pulse.Port1)
	}, id, 16*id+64)
	return string(p), err
}

// LowerBound is Theorem 4's bound: any content-oblivious leader election
// on an n-ring with IDs up to idMax sends at least n·floor(log2(idMax/n))
// pulses for some ID assignment.
func LowerBound(n int, idMax uint64) uint64 {
	return core.LowerBoundPulses(n, idMax)
}

// PredictedPulses returns the paper's exact pulse count for Algorithm 2:
// n(2·ID_max + 1).
func PredictedPulses(n int, idMax uint64) uint64 {
	return core.PredictedAlg2Pulses(n, idMax)
}

// collect converts runtime results into the facade Result.
func collect(n int, ids []uint64, statuses []node.Status, order []int,
	sent, cw, ccw uint64, quiescent, terminated bool, predicted uint64) Result {
	res := Result{
		N:          n,
		Leader:     -1,
		Pulses:     sent,
		PulsesCW:   cw,
		PulsesCCW:  ccw,
		Quiescent:  quiescent,
		Terminated: terminated,
		Predicted:  predicted,
	}
	res.TerminationOrder = append(res.TerminationOrder, order...)
	leaders := 0
	for k, st := range statuses {
		out := NodeOutcome{
			State:          st.State,
			Terminated:     st.Terminated,
			HasOrientation: st.HasOrientation,
			CWPort:         st.CWPort,
		}
		if k < len(ids) {
			out.ID = ids[k]
		}
		if st.State == node.StateLeader {
			leaders++
			res.Leader = k
			res.LeaderID = out.ID
		}
		res.Nodes = append(res.Nodes, out)
	}
	if leaders != 1 {
		res.Leader = -1
		res.LeaderID = 0
	}
	return res
}
