package coleader

import (
	"fmt"
	"math/rand"
	"time"

	"coleader/internal/core"
	"coleader/internal/live"
	"coleader/internal/node"
	"coleader/internal/pulse"
	"coleader/internal/ring"
	"coleader/internal/sim"
)

// SchedulerName selects a simulator scheduler: one of "canonical",
// "newest", "random", "roundrobin", "ccw-first", "cw-first", "flaky".
type SchedulerName string

// Stock scheduler names.
const (
	// SchedCanonical delivers in global send order (Definition 21).
	SchedCanonical SchedulerName = "canonical"
	// SchedNewest delivers the most recently sent message first.
	SchedNewest SchedulerName = "newest"
	// SchedRandom delivers a uniformly random in-flight message.
	SchedRandom SchedulerName = "random"
	// SchedRoundRobin cycles fairly through ready channels.
	SchedRoundRobin SchedulerName = "roundrobin"
	// SchedCCWFirst starves the clockwise direction.
	SchedCCWFirst SchedulerName = "ccw-first"
	// SchedCWFirst starves the counterclockwise direction.
	SchedCWFirst SchedulerName = "cw-first"
	// SchedFlaky alternates canonical and random bursts.
	SchedFlaky SchedulerName = "flaky"
	// SchedHashDelay fixes a pseudo-random delay per message at send time.
	SchedHashDelay SchedulerName = "hashdelay"
)

// SchedulerNames lists all stock schedulers in a stable order.
func SchedulerNames() []SchedulerName {
	return []SchedulerName{
		SchedCanonical, SchedNewest, SchedRandom, SchedRoundRobin,
		SchedCCWFirst, SchedCWFirst, SchedFlaky, SchedHashDelay,
	}
}

type config struct {
	seed       int64
	sched      SchedulerName
	liveRun    bool
	timeout    time.Duration
	limit      uint64
	flips      []bool
	randPorts  bool
	scheme     core.IDScheme
	invariants bool
}

const (
	schemeSuccessor = core.SchemeSuccessor
	schemeDoubled   = core.SchemeDoubled
)

// Option configures a run.
type Option func(*config)

// WithSeed seeds every randomized component of the run (scheduler, port
// assignment, ID sampling). Equal seeds give identical runs.
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithScheduler selects the simulator's delivery adversary.
func WithScheduler(name SchedulerName) Option { return func(c *config) { c.sched = name } }

// WithLiveRuntime executes on one goroutine per node with real channels
// instead of the deterministic simulator; the Go scheduler supplies the
// asynchrony. The scheduler option is ignored in this mode.
func WithLiveRuntime() Option { return func(c *config) { c.liveRun = true } }

// WithTimeout bounds a live-runtime run (default 10s).
func WithTimeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithStepLimit bounds the simulator's deliveries (default: 4x the paper's
// predicted pulse count, plus slack).
func WithStepLimit(n uint64) Option { return func(c *config) { c.limit = n } }

// WithPortFlips wires node k with swapped ports when flips[k] is true,
// producing a specific non-oriented ring (only meaningful for
// ElectNonOriented and ElectAnonymous).
func WithPortFlips(flips ...bool) Option {
	return func(c *config) { c.flips = append([]bool(nil), flips...) }
}

// WithRandomPorts wires every node's ports uniformly at random from the
// run's seed.
func WithRandomPorts() Option { return func(c *config) { c.randPorts = true } }

// WithDoubledIDs makes ElectNonOriented use the original virtual-ID scheme
// of Proposition 15 (cost n(4·ID_max-1)) instead of Theorem 2's successor
// scheme (cost n(2·ID_max+1)).
func WithDoubledIDs() Option { return func(c *config) { c.scheme = schemeDoubled } }

// WithInvariantChecks attaches the Lemma 6 family of per-event invariant
// checkers (Algorithms 1 and 2 on the simulator only); any violation
// aborts the run with an error.
func WithInvariantChecks() Option { return func(c *config) { c.invariants = true } }

func buildConfig(n int, opts []Option) config {
	cfg := config{
		seed:    1,
		sched:   SchedRandom,
		timeout: 10 * time.Second,
		scheme:  schemeSuccessor,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

func (c config) topology(n int) (ring.Topology, error) {
	switch {
	case c.flips != nil:
		if len(c.flips) != n {
			return ring.Topology{}, fmt.Errorf("coleader: %d port flips for %d nodes", len(c.flips), n)
		}
		return ring.NonOriented(c.flips)
	case c.randPorts:
		return ring.RandomNonOriented(n, rand.New(rand.NewSource(c.seed)))
	default:
		return ring.Oriented(n)
	}
}

func (c config) scheduler() (sim.Scheduler, error) {
	switch c.sched {
	case SchedCanonical:
		return sim.Canonical{}, nil
	case SchedNewest:
		return sim.Newest{}, nil
	case SchedRandom, "":
		return sim.NewRandom(c.seed), nil
	case SchedRoundRobin:
		return sim.NewRoundRobin(), nil
	case SchedCCWFirst:
		return sim.DirBiased{Prefer: pulse.CCW}, nil
	case SchedCWFirst:
		return sim.DirBiased{Prefer: pulse.CW}, nil
	case SchedFlaky:
		return sim.NewLaggy(c.seed), nil
	case SchedHashDelay:
		return sim.NewHashDelay(c.seed), nil
	default:
		return nil, fmt.Errorf("coleader: unknown scheduler %q", c.sched)
	}
}

// run executes machines on the configured runtime and collects the result.
func (c config) run(topo ring.Topology, ms []node.PulseMachine, ids []uint64,
	predicted uint64, obs []sim.Observer[pulse.Pulse]) (Result, error) {

	if c.liveRun {
		res, err := live.Run(topo, ms, live.WithTimeout(c.timeout))
		out := collect(topo.N(), ids, res.Statuses, res.TerminationOrder,
			res.Sent, res.SentCW, res.SentCCW, res.Quiescent, res.AllTerminated, predicted)
		return out, err
	}

	sched, err := c.scheduler()
	if err != nil {
		return Result{}, err
	}
	var simOpts []sim.Option[pulse.Pulse]
	for _, o := range obs {
		simOpts = append(simOpts, sim.WithObserver[pulse.Pulse](o))
	}
	s, err := sim.New(topo, ms, sched, simOpts...)
	if err != nil {
		return Result{}, err
	}
	limit := c.limit
	if limit == 0 {
		limit = 4*predicted + 1024
	}
	res, err := s.Run(limit)
	out := collect(topo.N(), ids, res.Statuses, res.TerminationOrder,
		res.Sent, res.SentCW, res.SentCCW, res.Quiescent, res.AllTerminated, predicted)
	return out, err
}
